//! The roll-up operation — Definition 1 of the paper.
//!
//! Given a concept pattern query `Q`, return the top-K documents by
//! `rel(Q, d) = Σ_{c∈Q} cdr(c, d)`, where a document qualifies only if it
//! matches **every** concept in `Q`. A broad query concept with no direct
//! posting for a document is represented by the best-scoring **edge
//! concept** among its descendants (§III-A1).

use crate::config::NcxConfig;
use crate::indexer::NcxIndex;
use crate::query::ConceptQuery;
use ncx_index::TopK;
use ncx_kg::{ontology, ConceptId, DocId, InstanceId, KnowledgeGraph};
use rustc_hash::FxHashMap;

/// How one query concept matched one document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConceptMatch {
    /// The query concept.
    pub concept: ConceptId,
    /// The concept whose posting supplied the score (== `concept` for a
    /// direct match; a descendant for an edge-concept fallback).
    pub via: ConceptId,
    /// The `cdr` score contributed.
    pub cdr: f64,
    /// The pivot entity of the match.
    pub pivot: InstanceId,
}

/// One roll-up result.
#[derive(Debug, Clone, PartialEq)]
pub struct RollupHit {
    /// The matched document.
    pub doc: DocId,
    /// `rel(Q, d)`.
    pub score: f64,
    /// Per-query-concept match details (same order as the query).
    pub matches: Vec<ConceptMatch>,
}

/// Per-concept document match map: document → best match for the concept.
fn concept_doc_map(
    index: &NcxIndex,
    kg: &KnowledgeGraph,
    c: ConceptId,
    config: &NcxConfig,
) -> FxHashMap<DocId, ConceptMatch> {
    let mut map: FxHashMap<DocId, ConceptMatch> = FxHashMap::default();
    let mut absorb = |via: ConceptId| {
        for p in index.postings(via) {
            let candidate = ConceptMatch {
                concept: c,
                via,
                cdr: p.cdr,
                pivot: p.pivot,
            };
            map.entry(p.doc)
                .and_modify(|m| {
                    if candidate.cdr > m.cdr {
                        *m = candidate;
                    }
                })
                .or_insert(candidate);
        }
    };
    absorb(c);
    if config.edge_concept_fallback {
        for d in ontology::descendants(kg, c) {
            absorb(d);
        }
    }
    map
}

/// All documents matching `Q`, with per-concept match details. Returns an
/// empty map for an empty query.
pub fn matched_docs(
    index: &NcxIndex,
    kg: &KnowledgeGraph,
    query: &ConceptQuery,
    config: &NcxConfig,
) -> FxHashMap<DocId, Vec<ConceptMatch>> {
    if query.is_empty() {
        return FxHashMap::default();
    }
    let mut maps: Vec<FxHashMap<DocId, ConceptMatch>> = query
        .concepts()
        .iter()
        .map(|&c| concept_doc_map(index, kg, c, config))
        .collect();
    // Intersect starting from the smallest map.
    let smallest = maps
        .iter()
        .enumerate()
        .min_by_key(|(_, m)| m.len())
        .map(|(i, _)| i)
        .unwrap();
    let seed_map = maps.swap_remove(smallest);
    let mut out: FxHashMap<DocId, Vec<ConceptMatch>> = FxHashMap::default();
    'docs: for (doc, m0) in seed_map {
        let mut matches = Vec::with_capacity(query.len());
        matches.push(m0);
        for other in &maps {
            match other.get(&doc) {
                Some(m) => matches.push(*m),
                None => continue 'docs,
            }
        }
        // Restore query order for presentation.
        matches.sort_by_key(|m| {
            query
                .concepts()
                .iter()
                .position(|&c| c == m.concept)
                .unwrap_or(usize::MAX)
        });
        out.insert(doc, matches);
    }
    out
}

/// The roll-up operation: top-`k` documents by `rel(Q, d)`, ties broken by
/// ascending document id.
pub fn rollup(
    index: &NcxIndex,
    kg: &KnowledgeGraph,
    query: &ConceptQuery,
    k: usize,
    config: &NcxConfig,
) -> Vec<RollupHit> {
    let docs = matched_docs(index, kg, query, config);
    let mut top = TopK::new(k);
    let mut details: FxHashMap<DocId, Vec<ConceptMatch>> = docs;
    for (doc, matches) in &details {
        let score: f64 = matches.iter().map(|m| m.cdr).sum();
        top.push(*doc, score);
    }
    top.into_sorted_vec()
        .into_iter()
        .map(|(doc, score)| RollupHit {
            doc,
            score,
            matches: details.remove(&doc).unwrap_or_default(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexer::Indexer;
    use ncx_index::{DocumentStore, NewsSource};
    use ncx_kg::GraphBuilder;
    use ncx_text::{GazetteerLinker, NlpPipeline};

    /// KG with a two-level taxonomy:
    /// Company <- {Exchange, Bank}; Crime = {fraud, laundering}.
    fn setup() -> (KnowledgeGraph, DocumentStore) {
        let mut b = GraphBuilder::new();
        let company = b.concept("Company");
        let exch = b.concept("Exchange");
        let bank = b.concept("Bank");
        let crime = b.concept("Crime");
        b.broader(exch, company);
        b.broader(bank, company);
        let ftx = b.instance("FTX");
        let dbs = b.instance("DBS");
        let fraud = b.instance("fraud");
        let launder = b.instance("laundering");
        b.member(exch, ftx);
        b.member(bank, dbs);
        b.member(crime, fraud);
        b.member(crime, launder);
        b.fact(ftx, "accusedOf", fraud);
        b.fact(dbs, "flagged", launder);
        b.fact(ftx, "clientOf", dbs);
        let kg = b.build();

        let mut store = DocumentStore::new();
        store.add(
            NewsSource::Reuters,
            "FTX fraud".into(),
            "FTX accused of fraud. FTX executives charged with fraud.".into(),
            0,
        );
        store.add(
            NewsSource::Reuters,
            "DBS laundering check".into(),
            "DBS screens for laundering risks.".into(),
            1,
        );
        store.add(
            NewsSource::Nyt,
            "FTX banks with DBS".into(),
            "FTX opened accounts at DBS.".into(),
            2,
        );
        (kg, store)
    }

    fn build() -> (KnowledgeGraph, NcxIndex, NcxConfig) {
        let (kg, store) = setup();
        let nlp = NlpPipeline::new(GazetteerLinker::build(&kg));
        let config = NcxConfig {
            threads: 1,
            samples: 300,
            max_member_fraction: 1.0,
            ..NcxConfig::default()
        };
        let index = Indexer::new(&kg, &nlp, config.clone()).index_corpus(&store);
        (kg, index, config)
    }

    #[test]
    fn single_concept_rollup() {
        let (kg, index, config) = build();
        let q = ConceptQuery::from_names(&kg, &["Exchange"]).unwrap();
        let hits = rollup(&index, &kg, &q, 10, &config);
        // FTX appears in d0 and d2.
        let ids: Vec<u32> = hits.iter().map(|h| h.doc.raw()).collect();
        assert!(ids.contains(&0) && ids.contains(&2));
        assert_eq!(hits.len(), 2);
        for h in &hits {
            assert_eq!(h.matches.len(), 1);
            assert!((h.score - h.matches[0].cdr).abs() < 1e-12);
        }
    }

    #[test]
    fn conjunctive_matching() {
        let (kg, index, config) = build();
        let q = ConceptQuery::from_names(&kg, &["Exchange", "Crime"]).unwrap();
        let hits = rollup(&index, &kg, &q, 10, &config);
        // Only d0 mentions both an exchange and a crime term.
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc.raw(), 0);
        assert_eq!(hits[0].matches.len(), 2);
        // rel is the sum over query concepts.
        let sum: f64 = hits[0].matches.iter().map(|m| m.cdr).sum();
        assert!((hits[0].score - sum).abs() < 1e-12);
    }

    #[test]
    fn broad_concept_uses_edge_concepts() {
        let (kg, index, config) = build();
        // "Company" has no direct members; matching goes through
        // Exchange/Bank descendants.
        let q = ConceptQuery::from_names(&kg, &["Company"]).unwrap();
        let hits = rollup(&index, &kg, &q, 10, &config);
        assert_eq!(hits.len(), 3, "all docs mention some company");
        let company = kg.concept_by_name("Company").unwrap();
        for h in &hits {
            assert_eq!(h.matches[0].concept, company);
            assert_ne!(h.matches[0].via, company, "must match via an edge concept");
        }
    }

    #[test]
    fn fallback_can_be_disabled() {
        let (kg, index, mut config) = build();
        config.edge_concept_fallback = false;
        let q = ConceptQuery::from_names(&kg, &["Company"]).unwrap();
        assert!(rollup(&index, &kg, &q, 10, &config).is_empty());
    }

    #[test]
    fn k_truncates_by_score() {
        let (kg, index, config) = build();
        let q = ConceptQuery::from_names(&kg, &["Exchange"]).unwrap();
        let all = rollup(&index, &kg, &q, 10, &config);
        let top1 = rollup(&index, &kg, &q, 1, &config);
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0].doc, all[0].doc);
        assert!(all[0].score >= all[1].score);
    }

    #[test]
    fn fraud_heavy_doc_outranks() {
        let (kg, index, config) = build();
        let q = ConceptQuery::from_names(&kg, &["Crime"]).unwrap();
        let hits = rollup(&index, &kg, &q, 10, &config);
        // d0 mentions fraud three times vs d1's single laundering mention;
        // term weighting should rank d0 first.
        assert_eq!(hits[0].doc.raw(), 0);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let (kg, index, config) = build();
        let q = ConceptQuery::new([]);
        assert!(rollup(&index, &kg, &q, 5, &config).is_empty());
    }

    #[test]
    fn unmatched_concept_returns_nothing() {
        let (kg, store) = setup();
        let mut b = GraphBuilder::new();
        let _ = (kg, store);
        // Fresh KG with an unused concept to query.
        let unused = b.concept("Ghost");
        let kg2 = b.build();
        let nlp = NlpPipeline::new(GazetteerLinker::build(&kg2));
        let config = NcxConfig {
            threads: 1,
            ..NcxConfig::default()
        };
        let index = Indexer::new(&kg2, &nlp, config.clone()).index_corpus(&DocumentStore::new());
        let q = ConceptQuery::new([unused]);
        assert!(rollup(&index, &kg2, &q, 5, &config).is_empty());
    }
}
