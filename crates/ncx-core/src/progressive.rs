//! Progressive anytime query execution.
//!
//! The walk-estimated operators ([`rollup`](crate::rollup) /
//! [`drilldown`](crate::drilldown)) are inherently *anytime*
//! computations: every score is a Monte-Carlo estimate that sharpens
//! with walks. The classic path runs every estimate to its full budget
//! and then ranks; this module refactors that into a **round/tranche
//! loop** that keeps per-candidate confidence intervals and stops
//! walking as soon as the answer — the top-k — is decided:
//!
//! 1. **Enumerate.** Matched documents come from the same
//!    [`matched_docs_bounded`] fold the classic operators use. Every
//!    `(document, scoring concept)` pair whose `cdr` has a walk-estimated
//!    context component becomes a resumable **unit**
//!    ([`ConnProgress`]), opened with the *identical* `(concept,
//!    context, samples, seed)` the indexer used — so driving a unit to
//!    completion reproduces the stored posting's connectivity bits.
//! 2. **Race.** Each round advances every unit of every still-active
//!    candidate by one tranche of walks
//!    ([`ProgressiveConfig::tranche`]). With racing on and more than
//!    `k` candidates, a successive-halving rule prunes candidates that
//!    provably (at the configured confidence) cannot reach the top-k:
//!    the boundary is the k-th largest interval lower bound, and any
//!    unfinished candidate whose upper bound sits below it stops
//!    consuming walks. Surviving candidates run to their own adaptive
//!    convergence, so their final scores are exactly the exhaustive
//!    ones — pruning changes *who keeps walking*, never the bits of a
//!    reported score.
//! 3. **Cut or finish.** The loop ends when every unpruned unit is done
//!    (→ [`Completion::Complete`]), or a [`Deadline`] /
//!    [`ProgressiveConfig::max_walks`] cut fires (→
//!    [`Completion::Partial`] carrying a `completeness` fraction).
//!
//! # The partial-result contract
//!
//! A cut result reports the **converged prefix** of the ranking: the
//! fully-finished candidates whose scores already *deterministically*
//! beat every still-unfinished candidate's upper bound (for an
//! unfinished `cdr` component the bound is its scale — `cdr_o` under the
//! full ablation — since `cdr_c < 1` for any finite connectivity). The
//! prefix is therefore always a prefix of what the completed run would
//! have returned: an unfinished candidate's final score can never climb
//! above its bound, and finished candidates sort identically in both.
//! `tests/estimator_validation.rs` pins this property under random cut
//! points.
//!
//! # Reference semantics
//!
//! With racing off ([`ProgressiveConfig::racing`] = `false`), an
//! unlimited budget, and sequential parallelism, the progressive result
//! is **bit-for-bit** the classic operator's: same matched set, same
//! per-candidate float-fold order, same [`TopK`] tie-breaking — asserted
//! by the tests below. Racing preserves the top-k *scores* exactly and
//! the top-k *set* with probability governed by [`ProgressiveConfig::z`].
//!
//! The final assembly always replays the classic sequential folds (the
//! race itself is sequential — walk units are cheap and the pool is
//! reserved for the enumeration stage), so progressive results do not
//! vary with the configured parallelism.

use crate::budget::Deadline;
use crate::config::{NcxConfig, ProgressiveConfig, ScoreAblation};
use crate::drilldown::{SbrFactors, Subtopic};
use crate::indexer::NcxIndex;
use crate::par::Pool;
use crate::query::ConceptQuery;
use crate::relevance::estimator::{pair_seed, ConnProgress};
use crate::relevance::{cdrc_from_conn, ConnEstimator};
use crate::rollup::{matched_docs_bounded, RollupHit};
use ncx_index::TopK;
use ncx_kg::{ontology, ConceptId, DocId, InstanceId, KnowledgeGraph};
use ncx_obs::{Phase, QueryTrace, Stopwatch};
use rustc_hash::{FxHashMap, FxHashSet};
use std::cmp::Ordering;

/// One ranked item with its estimate's confidence interval and the walk
/// budget it actually consumed.
///
/// Items reported by the progressive operators are always *finished*
/// candidates — their estimate can no longer move — so `ci_lo == ci_hi
/// == estimate`; the interval fields exist so future relaxations (e.g.
/// reporting the unconverged tail) keep the same shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Ranked<T> {
    /// The result payload (a [`RollupHit`] or [`Subtopic`]).
    pub item: T,
    /// The ranking score estimate.
    pub estimate: f64,
    /// Lower end of the score's confidence interval.
    pub ci_lo: f64,
    /// Upper end of the score's confidence interval.
    pub ci_hi: f64,
    /// Walk samples consumed by this candidate's estimates.
    pub walks_spent: u64,
}

/// Whether a progressive result ran to its decision point or was cut.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Completion {
    /// Every walk the answer needed was run; the ranking is final.
    Complete,
    /// A deadline or walk cap fired mid-race: the items are the
    /// converged prefix of the final ranking.
    Partial {
        /// Fraction of the needed walk units that finished (0 when the
        /// cut hit during enumeration, before any walk).
        completeness: f64,
    },
}

impl Completion {
    /// `true` for [`Completion::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, Completion::Complete)
    }

    /// The completeness fraction: 1 when complete.
    pub fn completeness(&self) -> f64 {
        match *self {
            Completion::Complete => 1.0,
            Completion::Partial { completeness } => completeness,
        }
    }
}

/// The result of a progressive operator: ranked items plus execution
/// accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressiveResult<T> {
    /// The ranking — the full top-k when [`Completion::Complete`], the
    /// converged prefix of it when [`Completion::Partial`].
    pub items: Vec<Ranked<T>>,
    /// Whether the race finished or was cut.
    pub status: Completion,
    /// Total walk samples consumed across all candidates (pruned ones
    /// included).
    pub walks: u64,
    /// Race rounds executed (0 when no walks were needed).
    pub rounds: u32,
    /// Candidates that entered the race.
    pub candidates: usize,
}

impl<T> ProgressiveResult<T> {
    /// `true` when the ranking is final.
    pub fn is_complete(&self) -> bool {
        self.status.is_complete()
    }

    /// The completeness fraction: 1 when complete.
    pub fn completeness(&self) -> f64 {
        self.status.completeness()
    }

    /// A cut that fired before any candidate was scored (during match
    /// enumeration, or — in the serving layer — while the query was
    /// still queued for admission): an empty partial with completeness
    /// 0. Nothing is known about the answer yet, but the caller still
    /// gets a well-typed anytime result instead of an error.
    pub fn interrupted() -> Self {
        Self {
            items: Vec::new(),
            status: Completion::Partial { completeness: 0.0 },
            walks: 0,
            rounds: 0,
            candidates: 0,
        }
    }

    /// A trivially complete result (empty query or no matches).
    fn empty() -> Self {
        Self {
            items: Vec::new(),
            status: Completion::Complete,
            walks: 0,
            rounds: 0,
            candidates: 0,
        }
    }
}

/// One resumable walk unit: the connectivity estimate behind a single
/// `(document, scoring concept)` cdr component, plus the deterministic
/// scale mapping connectivity to the component's value
/// (`cdr = scale · cdr_c(conn)`; scale is `cdr_o` under
/// [`ScoreAblation::Full`], 1 under [`ScoreAblation::ContextOnly`]).
struct Unit {
    scale: f64,
    progress: ConnProgress,
}

impl Unit {
    /// The component's current value. Final once the progress is done.
    fn value(&self) -> f64 {
        self.scale * cdrc_from_conn(self.progress.estimate())
    }

    /// A **deterministic** upper bound on the component's final value:
    /// the current value when done, else the scale (`cdr_c < 1` for any
    /// finite connectivity, and walk means are always finite).
    fn upper(&self) -> f64 {
        if self.progress.is_done() {
            self.value()
        } else {
            self.scale
        }
    }

    /// The component's `z`-confidence interval (monotone image of the
    /// connectivity interval — `cdr_c` is increasing in conn).
    fn ci(&self, z: f64) -> (f64, f64) {
        let (lo, hi) = self.progress.interval(z);
        (
            self.scale * cdrc_from_conn(lo),
            self.scale * cdrc_from_conn(hi),
        )
    }
}

/// One additive score component of a candidate.
enum Comp {
    /// Walk-estimated: an index into the unit table.
    Unit(usize),
    /// Exact, walk-free (ontology-only ablation, or a match with no
    /// posting to re-score from).
    Exact(f64),
}

/// One race candidate: its score components in the classic operators'
/// fold order, the distinct units to advance, and the non-negative
/// multiplier racing applies on top of the component sum (1 for
/// roll-up; the specificity/diversity factors for drill-down).
struct Cand {
    comps: Vec<Comp>,
    advance: Vec<usize>,
    mult: f64,
    pruned: bool,
}

impl Cand {
    /// Whether every walk unit of this candidate is done.
    fn done(&self, units: &[Unit]) -> bool {
        self.advance.iter().all(|&u| units[u].progress.is_done())
    }

    /// The component sum, folded in the classic operators' order (so a
    /// finished candidate's sum is bit-for-bit the classic one).
    fn cov(&self, units: &[Unit]) -> f64 {
        self.comps
            .iter()
            .map(|c| match *c {
                Comp::Unit(u) => units[u].value(),
                Comp::Exact(x) => x,
            })
            .sum()
    }

    /// Deterministic upper bound on the final component sum — the same
    /// fold over per-component upper bounds (float addition is
    /// monotone, so the folded bound dominates the folded final sum).
    fn cov_upper(&self, units: &[Unit]) -> f64 {
        self.comps
            .iter()
            .map(|c| match *c {
                Comp::Unit(u) => units[u].upper(),
                Comp::Exact(x) => x,
            })
            .sum()
    }

    /// The candidate's score confidence interval (component interval
    /// sums, times the racing multiplier).
    fn ci(&self, units: &[Unit], z: f64) -> (f64, f64) {
        let (mut lo, mut hi) = (0.0f64, 0.0f64);
        for c in &self.comps {
            match *c {
                Comp::Unit(u) => {
                    let (l, h) = units[u].ci(z);
                    lo += l;
                    hi += h;
                }
                Comp::Exact(x) => {
                    lo += x;
                    hi += x;
                }
            }
        }
        (lo * self.mult, hi * self.mult)
    }

    /// Walk samples this candidate's units consumed.
    fn walks(&self, units: &[Unit]) -> u64 {
        self.advance
            .iter()
            .map(|&u| units[u].progress.stats().walks)
            .sum()
    }
}

/// Builds the score component for one `(doc, via)` pair, opening a
/// resumable unit when the ablation calls for a walk-estimated context
/// factor. `unit_ix` dedups shared units *within one candidate* (two
/// query concepts can match a document via the same edge concept);
/// clear it per candidate.
#[allow(clippy::too_many_arguments)]
fn make_comp(
    index: &NcxIndex,
    kg: &KnowledgeGraph,
    config: &NcxConfig,
    estimator: &ConnEstimator,
    doc: DocId,
    via: ConceptId,
    stored_cdr: f64,
    units: &mut Vec<Unit>,
    unit_ix: &mut FxHashMap<ConceptId, usize>,
    advance: &mut Vec<usize>,
) -> Comp {
    let Some(posting) = index.posting(via, doc) else {
        // No posting to re-score from: keep the stored value exactly.
        return Comp::Exact(stored_cdr);
    };
    match config.ablation {
        ScoreAblation::OntologyOnly => Comp::Exact(posting.cdro),
        ablation => {
            if let Some(&u) = unit_ix.get(&via) {
                return Comp::Unit(u);
            }
            let scale = if ablation == ScoreAblation::Full {
                posting.cdro
            } else {
                1.0
            };
            // The indexer's context recipe, verbatim: the document's
            // entities that are not themselves members of `via`.
            let context: Vec<InstanceId> = index
                .entity_index
                .entities_of(doc)
                .iter()
                .filter(|&&(v, _)| kg.concepts_of(v).binary_search(&via).is_err())
                .map(|&(v, _)| v)
                .collect();
            let seed = pair_seed(config.seed, doc.raw(), via.raw());
            let progress = estimator.begin_conn_concept(kg, via, &context, config.samples, seed);
            let u = units.len();
            units.push(Unit { scale, progress });
            unit_ix.insert(via, u);
            advance.push(u);
            Comp::Unit(u)
        }
    }
}

/// Race bookkeeping returned by [`run_race`]. Whether the race was cut
/// is not recorded here — assembly re-derives it from whether any
/// unpruned candidate still has unfinished units, which also covers a
/// cut that happened to land on the last needed walk.
struct RaceOutcome {
    rounds: u32,
    walks: u64,
    /// Per-unit tranche advances issued (unit not already done).
    tranches: u64,
    /// Candidates eliminated by the successive-halving rule.
    prunes: u64,
}

/// The round/tranche loop. Each round: check the cuts, apply the
/// successive-halving prune (racing only), then advance every
/// unfinished unit of every unpruned candidate by one tranche.
///
/// Cut policy: the walk cap is tested **between rounds only**, so a
/// capped run halts in a deterministic state every complete run passes
/// through (the prefix-of-complete property relies on this); the
/// deadline is additionally tested after every unit advance, since a
/// wall-clock cut is not reproducible anyway and tighter checks bound
/// the overshoot.
fn run_race(
    kg: &KnowledgeGraph,
    estimator: &ConnEstimator,
    units: &mut [Unit],
    cands: &mut [Cand],
    k: usize,
    cfg: &ProgressiveConfig,
    deadline: Option<&Deadline>,
) -> RaceOutcome {
    let mut walks: u64 = 0;
    let mut rounds: u32 = 0;
    let mut tranches: u64 = 0;
    let mut prunes: u64 = 0;
    let racing = cfg.racing && k > 0 && cands.len() > k;
    loop {
        if !cands.iter().any(|c| !c.pruned && !c.done(units)) {
            return RaceOutcome {
                rounds,
                walks,
                tranches,
                prunes,
            };
        }
        if let Some(max) = cfg.max_walks {
            if walks >= max {
                return RaceOutcome {
                    rounds,
                    walks,
                    tranches,
                    prunes,
                };
            }
        }
        if let Some(d) = deadline {
            if d.expired() {
                return RaceOutcome {
                    rounds,
                    walks,
                    tranches,
                    prunes,
                };
            }
        }
        if racing {
            // The separation boundary: the k-th largest interval lower
            // bound over the unpruned candidates (finished candidates
            // contribute their point score). An unfinished candidate
            // whose upper bound falls strictly below it is behind at
            // least k others at the configured confidence — it stops
            // walking. Finished candidates are never pruned: their
            // score is already final, and pruning them could evict a
            // reported result.
            let mut lows: Vec<f64> = cands
                .iter()
                .filter(|c| !c.pruned)
                .map(|c| c.ci(units, cfg.z).0)
                .collect();
            if lows.len() > k {
                lows.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap_or(Ordering::Equal));
                let boundary = lows[k - 1];
                for c in cands.iter_mut() {
                    if c.pruned || c.done(units) {
                        continue;
                    }
                    if c.ci(units, cfg.z).1 < boundary {
                        c.pruned = true;
                        prunes += 1;
                    }
                }
            }
        }
        for c in cands.iter() {
            if c.pruned {
                continue;
            }
            for &u in &c.advance {
                if units[u].progress.is_done() {
                    continue;
                }
                tranches += 1;
                walks += u64::from(estimator.advance(kg, &mut units[u].progress, cfg.tranche));
                if let Some(d) = deadline {
                    if d.expired() {
                        return RaceOutcome {
                            rounds: rounds + 1,
                            walks,
                            tranches,
                            prunes,
                        };
                    }
                }
            }
        }
        rounds += 1;
    }
}

/// Records the race into a trace — [`Phase::Walks`] is the race's wall
/// time *net* of the oracle-BFS time the estimator logged during it
/// (so the two phases stay disjoint and phase sums track wall time) —
/// and starts the merge/rank stopwatch.
fn record_race(
    trace: Option<&QueryTrace>,
    race_sw: Stopwatch,
    oracle_before: u64,
    outcome: &RaceOutcome,
) -> Stopwatch {
    if let Some(t) = trace {
        let oracle_delta = t
            .phase_nanos(Phase::OracleBfs)
            .saturating_sub(oracle_before);
        let race_nanos = race_sw.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        t.add_nanos(Phase::Walks, race_nanos.saturating_sub(oracle_delta));
        t.add_walks(outcome.walks);
        t.add_rounds(u64::from(outcome.rounds));
        t.add_tranches(outcome.tranches);
        t.add_prunes(outcome.prunes);
    }
    Stopwatch::start()
}

/// Fraction of walk units (of unpruned candidates) that finished.
fn race_completeness(units: &[Unit], cands: &[Cand]) -> f64 {
    let mut total = 0usize;
    let mut done = 0usize;
    for c in cands {
        if c.pruned {
            continue;
        }
        for &u in &c.advance {
            total += 1;
            if units[u].progress.is_done() {
                done += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        done as f64 / total as f64
    }
}

/// Sorts finished candidates exactly as [`TopK::into_sorted_vec`] does
/// (score descending, key ascending) and takes the prefix whose scores
/// strictly beat `bound` — the deterministic ceiling of every
/// unfinished candidate — truncated to `k`. Strictness matters: a zero
/// scale makes an unfinished component's bound attainable, and only a
/// strictly greater score is guaranteed to stay ahead.
fn converged_prefix<K: Ord + Copy>(
    mut finished: Vec<(K, f64, usize)>,
    bound: f64,
    k: usize,
) -> Vec<(K, f64, usize)> {
    finished.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    let mut cut = 0;
    for &(_, score, _) in finished.iter().take(k) {
        if score > bound {
            cut += 1;
        } else {
            break;
        }
    }
    finished.truncate(cut);
    finished
}

/// **Progressive roll-up**: the anytime counterpart of
/// [`rollup`](crate::rollup::rollup). Returns the top-`k` documents as
/// [`Ranked`] items; see the module docs for the racing loop and the
/// partial-result contract.
///
/// The `estimator` must carry the engine's scoring parameters (τ, β,
/// guidance, walk budget) and — for the cache-sharing fast path — the
/// engine's member-set cache; [`crate::engine::NcExplorer::rollup_progressive`]
/// constructs it that way.
///
/// An attached `trace` records [`Phase::Matching`] (enumeration +
/// candidate construction), [`Phase::Walks`] (the race, net of any
/// oracle-BFS time the estimator logged), [`Phase::MergeRank`]
/// (assembly), and the race's walk/round/tranche/prune counters.
#[allow(clippy::too_many_arguments)]
pub fn rollup_progressive(
    index: &NcxIndex,
    kg: &KnowledgeGraph,
    query: &ConceptQuery,
    k: usize,
    config: &NcxConfig,
    pool: &Pool,
    estimator: &ConnEstimator,
    deadline: Option<&Deadline>,
    trace: Option<&QueryTrace>,
) -> ProgressiveResult<RollupHit> {
    let matching_sw = Stopwatch::start();
    let matched = match matched_docs_bounded(index, kg, query, config, pool, deadline) {
        Ok(m) => m,
        Err(_) => return ProgressiveResult::interrupted(),
    };
    if matched.is_empty() {
        if let Some(t) = trace {
            t.add(Phase::Matching, matching_sw.elapsed());
        }
        return ProgressiveResult::empty();
    }
    // Canonical candidate order: ascending document id.
    let mut docs: Vec<DocId> = matched.keys().copied().collect();
    docs.sort_unstable();

    let mut units: Vec<Unit> = Vec::new();
    let mut cands: Vec<Cand> = Vec::with_capacity(docs.len());
    let mut unit_ix: FxHashMap<ConceptId, usize> = FxHashMap::default();
    for &doc in &docs {
        unit_ix.clear();
        let matches = &matched[&doc];
        let mut comps = Vec::with_capacity(matches.len());
        let mut advance = Vec::new();
        for m in matches {
            comps.push(make_comp(
                index,
                kg,
                config,
                estimator,
                doc,
                m.via,
                m.cdr,
                &mut units,
                &mut unit_ix,
                &mut advance,
            ));
        }
        cands.push(Cand {
            comps,
            advance,
            mult: 1.0,
            pruned: false,
        });
    }
    if let Some(t) = trace {
        t.add(Phase::Matching, matching_sw.elapsed());
    }

    let race_sw = Stopwatch::start();
    let oracle_before = trace.map_or(0, |t| t.phase_nanos(Phase::OracleBfs));
    let outcome = run_race(
        kg,
        estimator,
        &mut units,
        &mut cands,
        k,
        &config.progressive,
        deadline,
    );
    let merge_sw = record_race(trace, race_sw, oracle_before, &outcome);

    // The classic hit, with re-estimated cdr values substituted into the
    // match list and the score folded in the identical match order.
    let hit_of = |ci: usize| -> RollupHit {
        let doc = docs[ci];
        let mut matches = matched[&doc].clone();
        for (m, comp) in matches.iter_mut().zip(&cands[ci].comps) {
            m.cdr = match *comp {
                Comp::Unit(u) => units[u].value(),
                Comp::Exact(x) => x,
            };
        }
        let score: f64 = matches.iter().map(|m| m.cdr).sum();
        RollupHit {
            doc,
            score,
            matches,
        }
    };

    let active: Vec<usize> = (0..cands.len())
        .filter(|&ci| !cands[ci].pruned && !cands[ci].done(&units))
        .collect();
    if active.is_empty() {
        // Complete (a cut that landed exactly on the last walk is a
        // completion). The literal classic fold, minus pruned docs —
        // pruned candidates are provably outside the top-k, so the TopK
        // output is unchanged.
        let mut top = TopK::new(k);
        for (ci, cand) in cands.iter().enumerate() {
            if cand.pruned {
                continue;
            }
            top.push(docs[ci], cand.cov(&units));
        }
        let pos: FxHashMap<DocId, usize> = docs.iter().enumerate().map(|(i, &d)| (d, i)).collect();
        let items = top
            .into_sorted_vec()
            .into_iter()
            .map(|(doc, score)| {
                let ci = pos[&doc];
                Ranked {
                    item: hit_of(ci),
                    estimate: score,
                    ci_lo: score,
                    ci_hi: score,
                    walks_spent: cands[ci].walks(&units),
                }
            })
            .collect();
        if let Some(t) = trace {
            t.add(Phase::MergeRank, merge_sw.elapsed());
        }
        return ProgressiveResult {
            items,
            status: Completion::Complete,
            walks: outcome.walks,
            rounds: outcome.rounds,
            candidates: cands.len(),
        };
    }

    // Partial: report the converged prefix.
    let bound = active
        .iter()
        .map(|&ci| cands[ci].cov_upper(&units))
        .fold(f64::NEG_INFINITY, f64::max);
    let finished: Vec<(DocId, f64, usize)> = cands
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.pruned && c.done(&units))
        .map(|(ci, c)| (docs[ci], c.cov(&units), ci))
        .collect();
    let items = converged_prefix(finished, bound, k)
        .into_iter()
        .map(|(_, score, ci)| Ranked {
            item: hit_of(ci),
            estimate: score,
            ci_lo: score,
            ci_hi: score,
            walks_spent: cands[ci].walks(&units),
        })
        .collect();
    if let Some(t) = trace {
        t.add(Phase::MergeRank, merge_sw.elapsed());
    }
    ProgressiveResult {
        items,
        status: Completion::Partial {
            completeness: race_completeness(&units, &cands),
        },
        walks: outcome.walks,
        rounds: outcome.rounds,
        candidates: cands.len(),
    }
}

/// **Progressive drill-down**: the anytime counterpart of
/// [`drilldown_with_factors`](crate::drilldown::drilldown_with_factors).
/// Candidates are subtopic concepts; each matched document contributes
/// one walk unit per candidate it scores, and the specificity/diversity
/// factors (exact, walk-free) scale the raced coverage interval.
#[allow(clippy::too_many_arguments)]
pub fn drilldown_progressive(
    index: &NcxIndex,
    kg: &KnowledgeGraph,
    query: &ConceptQuery,
    k: usize,
    config: &NcxConfig,
    pool: &Pool,
    estimator: &ConnEstimator,
    factors: SbrFactors,
    deadline: Option<&Deadline>,
    trace: Option<&QueryTrace>,
) -> ProgressiveResult<Subtopic> {
    let matching_sw = Stopwatch::start();
    let matched = match matched_docs_bounded(index, kg, query, config, pool, deadline) {
        Ok(m) => m,
        Err(_) => return ProgressiveResult::interrupted(),
    };
    if matched.is_empty() {
        if let Some(t) = trace {
            t.add(Phase::Matching, matching_sw.elapsed());
        }
        return ProgressiveResult::empty();
    }
    // The classic operator's deterministic, capped document set.
    let mut docs: Vec<DocId> = matched.into_keys().collect();
    docs.sort_unstable();
    docs.truncate(config.drilldown_doc_cap);

    let mut excluded: FxHashSet<ConceptId> = FxHashSet::default();
    for &c in query.concepts() {
        excluded.insert(c);
        excluded.extend(ontology::ancestors(kg, c));
    }

    // Sweep 1, progressively: candidates in first-seen order, score
    // components appended in the classic doc-ascending fold order, and
    // the per-candidate matching-document counts (exact, walk-free).
    let mut order: Vec<ConceptId> = Vec::new();
    let mut cix: FxHashMap<ConceptId, usize> = FxHashMap::default();
    let mut cands: Vec<Cand> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    let mut units: Vec<Unit> = Vec::new();
    let mut unit_scratch: FxHashMap<ConceptId, usize> = FxHashMap::default();
    for &doc in &docs {
        unit_scratch.clear();
        for &(c, stored_cdr) in index.concepts_of_doc(doc) {
            if excluded.contains(&c) {
                continue;
            }
            let ci = *cix.entry(c).or_insert_with(|| {
                order.push(c);
                counts.push(0);
                cands.push(Cand {
                    comps: Vec::new(),
                    advance: Vec::new(),
                    mult: 1.0,
                    pruned: false,
                });
                cands.len() - 1
            });
            counts[ci] += 1;
            let cand = &mut cands[ci];
            let comp = make_comp(
                index,
                kg,
                config,
                estimator,
                doc,
                c,
                stored_cdr,
                &mut units,
                &mut unit_scratch,
                &mut cand.advance,
            );
            cand.comps.push(comp);
        }
    }
    if cands.is_empty() {
        if let Some(t) = trace {
            t.add(Phase::Matching, matching_sw.elapsed());
        }
        return ProgressiveResult::empty();
    }

    // Sweep 2 (exact, walk-free): distinct supporting entities.
    let mut entity_sets: FxHashMap<ConceptId, FxHashSet<InstanceId>> = FxHashMap::default();
    for &doc in &docs {
        for &(v, _) in index.entity_index.entities_of(doc) {
            for &c in kg.concepts_of(v) {
                if cix.contains_key(&c) {
                    entity_sets.entry(c).or_default().insert(v);
                }
            }
        }
    }

    // Exact factor data per candidate; the racing multiplier folds the
    // chosen factors into one non-negative scalar (specificity is a
    // log of a ratio ≥ 1, diversity a ratio of counts).
    struct Meta {
        spec: f64,
        div: f64,
        matching: usize,
        distinct: usize,
    }
    let metas: Vec<Meta> = order
        .iter()
        .enumerate()
        .map(|(ci, &c)| {
            let matching = counts[ci];
            let distinct = entity_sets.get(&c).map_or(0, FxHashSet::len);
            let spec = kg.specificity(c);
            let div = if matching == 0 {
                0.0
            } else {
                distinct as f64 / matching as f64
            };
            Meta {
                spec,
                div,
                matching,
                distinct,
            }
        })
        .collect();
    for (cand, meta) in cands.iter_mut().zip(&metas) {
        cand.mult = match factors {
            SbrFactors::C => 1.0,
            SbrFactors::CS => meta.spec,
            SbrFactors::CSD => meta.spec * meta.div,
        };
    }
    if let Some(t) = trace {
        t.add(Phase::Matching, matching_sw.elapsed());
    }

    let race_sw = Stopwatch::start();
    let oracle_before = trace.map_or(0, |t| t.phase_nanos(Phase::OracleBfs));
    let outcome = run_race(
        kg,
        estimator,
        &mut units,
        &mut cands,
        k,
        &config.progressive,
        deadline,
    );
    let merge_sw = record_race(trace, race_sw, oracle_before, &outcome);

    // The classic score formula, verbatim (CSD multiplies the factors
    // separately — folding them first would change the float bits).
    let score_from_cov = |cov: f64, meta: &Meta| match factors {
        SbrFactors::C => cov,
        SbrFactors::CS => cov * meta.spec,
        SbrFactors::CSD => cov * meta.spec * meta.div,
    };
    let sub_of = |ci: usize, cov: f64, score: f64| -> Subtopic {
        let meta = &metas[ci];
        Subtopic {
            concept: order[ci],
            score,
            coverage: cov,
            specificity: meta.spec,
            diversity: meta.div,
            matching_docs: meta.matching,
            distinct_entities: meta.distinct,
        }
    };

    let active: Vec<usize> = (0..cands.len())
        .filter(|&ci| !cands[ci].pruned && !cands[ci].done(&units))
        .collect();
    if active.is_empty() {
        let mut top = TopK::new(k);
        for (ci, cand) in cands.iter().enumerate() {
            if cand.pruned {
                continue;
            }
            top.push(order[ci], score_from_cov(cand.cov(&units), &metas[ci]));
        }
        let items = top
            .into_sorted_vec()
            .into_iter()
            .map(|(c, score)| {
                let ci = cix[&c];
                Ranked {
                    item: sub_of(ci, cands[ci].cov(&units), score),
                    estimate: score,
                    ci_lo: score,
                    ci_hi: score,
                    walks_spent: cands[ci].walks(&units),
                }
            })
            .collect();
        if let Some(t) = trace {
            t.add(Phase::MergeRank, merge_sw.elapsed());
        }
        return ProgressiveResult {
            items,
            status: Completion::Complete,
            walks: outcome.walks,
            rounds: outcome.rounds,
            candidates: cands.len(),
        };
    }

    // Partial: scores and bounds live on the factored scale; the factor
    // multipliers are non-negative, so the bound stays a bound.
    let bound = active
        .iter()
        .map(|&ci| score_from_cov(cands[ci].cov_upper(&units), &metas[ci]))
        .fold(f64::NEG_INFINITY, f64::max);
    let finished: Vec<(ConceptId, f64, usize)> = cands
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.pruned && c.done(&units))
        .map(|(ci, c)| (order[ci], score_from_cov(c.cov(&units), &metas[ci]), ci))
        .collect();
    let items = converged_prefix(finished, bound, k)
        .into_iter()
        .map(|(_, score, ci)| Ranked {
            item: sub_of(ci, cands[ci].cov(&units), score),
            estimate: score,
            ci_lo: score,
            ci_hi: score,
            walks_spent: cands[ci].walks(&units),
        })
        .collect();
    if let Some(t) = trace {
        t.add(Phase::MergeRank, merge_sw.elapsed());
    }
    ProgressiveResult {
        items,
        status: Completion::Partial {
            completeness: race_completeness(&units, &cands),
        },
        walks: outcome.walks,
        rounds: outcome.rounds,
        candidates: cands.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Parallelism, WalkBudget};
    use crate::drilldown::drilldown_with_factors;
    use crate::indexer::Indexer;
    use crate::rollup::rollup;
    use ncx_index::{DocumentStore, NewsSource};
    use ncx_kg::GraphBuilder;
    use ncx_reach::TargetDistanceOracle;
    use std::sync::Arc;

    /// Crypto-themed corpus with enough distinct documents to give the
    /// racing loop real separation work.
    fn setup() -> (KnowledgeGraph, DocumentStore) {
        let mut b = GraphBuilder::new();
        let company = b.concept("Company");
        let exch = b.concept("Exchange");
        let bank = b.concept("Bank");
        b.broader(exch, company);
        b.broader(bank, company);
        let crime = b.concept("Crime");
        let regulator = b.concept("Regulator");
        let ftx = b.instance("FTX");
        let bnb = b.instance("Binance");
        let kraken = b.instance("Kraken");
        let dbs = b.instance("DBS");
        let fraud = b.instance("fraud");
        let launder = b.instance("laundering");
        let sec = b.instance("SEC");
        let cftc = b.instance("CFTC");
        b.member(exch, ftx);
        b.member(exch, bnb);
        b.member(exch, kraken);
        b.member(bank, dbs);
        b.member(crime, fraud);
        b.member(crime, launder);
        b.member(regulator, sec);
        b.member(regulator, cftc);
        b.fact(ftx, "accusedOf", fraud);
        b.fact(bnb, "probedFor", launder);
        b.fact(sec, "sued", ftx);
        b.fact(sec, "probed", bnb);
        b.fact(cftc, "sued", kraken);
        b.fact(ftx, "clientOf", dbs);
        let kg = b.build();

        let texts = [
            "SEC sued FTX over fraud. FTX executives charged with fraud.",
            "Binance probed for laundering by the SEC.",
            "CFTC sued Kraken. Kraken disputes the fraud claims.",
            "DBS screens laundering risks as FTX banks with DBS.",
            "FTX and Binance both face fraud scrutiny from the SEC.",
            "Kraken and DBS discussed laundering controls.",
        ];
        let mut store = DocumentStore::new();
        for (i, t) in texts.iter().enumerate() {
            store.add(
                NewsSource::Reuters,
                format!("doc {i}"),
                (*t).into(),
                i as u32,
            );
        }
        (kg, store)
    }

    fn build_with(config: &NcxConfig) -> (KnowledgeGraph, NcxIndex) {
        let (kg, store) = setup();
        let nlp = ncx_text::NlpPipeline::new(ncx_text::GazetteerLinker::build(&kg));
        let index = Indexer::new(&kg, &nlp, config.clone()).index_corpus(&store);
        (kg, index)
    }

    fn base_config() -> NcxConfig {
        NcxConfig {
            parallelism: Parallelism::sequential(),
            samples: 60,
            max_member_fraction: 1.0,
            ..NcxConfig::default()
        }
    }

    fn estimator_for(config: &NcxConfig) -> ConnEstimator {
        ConnEstimator::with_budget(
            config.tau,
            config.beta,
            config.guided,
            Arc::new(TargetDistanceOracle::with_shards(
                config.tau,
                config.oracle_cache,
                config.oracle_shards,
            )),
            config.walk_budget,
        )
    }

    fn pool() -> Pool {
        Pool::new(2)
    }

    #[test]
    fn exhaustive_progressive_rollup_is_bit_for_bit_classic() {
        // Racing off + unlimited budget + sequential parallelism is the
        // reference mode: the tentpole's equivalence requirement.
        for budget in [WalkBudget::disabled(), WalkBudget::default()] {
            let mut config = base_config();
            config.walk_budget = budget;
            config.progressive.racing = false;
            let (kg, index) = build_with(&config);
            let p = pool();
            let est = estimator_for(&config);
            for names in [
                vec!["Exchange"],
                vec!["Company"],
                vec!["Exchange", "Crime"],
                vec!["Company", "Crime"],
            ] {
                let q = ConceptQuery::from_names(&kg, &names).unwrap();
                let classic = rollup(&index, &kg, &q, 4, &config, &p);
                let prog = rollup_progressive(&index, &kg, &q, 4, &config, &p, &est, None, None);
                assert!(prog.is_complete());
                assert_eq!(prog.completeness(), 1.0);
                let hits: Vec<RollupHit> = prog.items.iter().map(|r| r.item.clone()).collect();
                assert_eq!(hits, classic, "diverged for {names:?}");
                for r in &prog.items {
                    assert_eq!(r.estimate, r.item.score);
                    assert_eq!(r.ci_lo, r.estimate);
                    assert_eq!(r.ci_hi, r.estimate);
                }
            }
        }
    }

    #[test]
    fn exhaustive_progressive_drilldown_is_bit_for_bit_classic() {
        let mut config = base_config();
        config.progressive.racing = false;
        let (kg, index) = build_with(&config);
        let p = pool();
        let est = estimator_for(&config);
        let q = ConceptQuery::from_names(&kg, &["Exchange"]).unwrap();
        for factors in [SbrFactors::C, SbrFactors::CS, SbrFactors::CSD] {
            let classic = drilldown_with_factors(&index, &kg, &q, 5, &config, &p, factors);
            let prog =
                drilldown_progressive(&index, &kg, &q, 5, &config, &p, &est, factors, None, None);
            assert!(prog.is_complete());
            let subs: Vec<Subtopic> = prog.items.iter().map(|r| r.item.clone()).collect();
            assert_eq!(subs, classic, "diverged for {factors:?}");
        }
    }

    #[test]
    fn racing_keeps_the_topk_and_saves_walks() {
        let config = base_config();
        let (kg, index) = build_with(&config);
        let p = pool();
        let q = ConceptQuery::from_names(&kg, &["Company", "Crime"]).unwrap();
        let mut exhaustive_cfg = config.clone();
        exhaustive_cfg.progressive.racing = false;
        let est = estimator_for(&config);
        let exhaustive =
            rollup_progressive(&index, &kg, &q, 2, &exhaustive_cfg, &p, &est, None, None);
        let est = estimator_for(&config);
        let raced = rollup_progressive(&index, &kg, &q, 2, &config, &p, &est, None, None);
        assert!(raced.is_complete());
        // Same top-k items with the exact same scores: racing prunes
        // losers, never perturbs survivors.
        assert_eq!(raced.items, exhaustive.items);
        assert!(
            raced.walks <= exhaustive.walks,
            "racing must not walk more: {} vs {}",
            raced.walks,
            exhaustive.walks
        );
    }

    #[test]
    fn walk_cap_yields_a_prefix_of_the_complete_ranking() {
        let config = base_config();
        let (kg, index) = build_with(&config);
        let p = pool();
        let q = ConceptQuery::from_names(&kg, &["Company"]).unwrap();
        let est = estimator_for(&config);
        let complete = rollup_progressive(&index, &kg, &q, 4, &config, &p, &est, None, None);
        assert!(complete.is_complete());
        for cap in [0u64, 10, 40, 90, 200, 100_000] {
            let mut capped_cfg = config.clone();
            capped_cfg.progressive.max_walks = Some(cap.max(1));
            let est = estimator_for(&capped_cfg);
            let capped = rollup_progressive(&index, &kg, &q, 4, &capped_cfg, &p, &est, None, None);
            assert!(
                capped.items.len() <= complete.items.len(),
                "cap {cap}: longer than complete"
            );
            for (a, b) in capped.items.iter().zip(&complete.items) {
                assert_eq!(a, b, "cap {cap}: partial is not a prefix");
            }
            if !capped.is_complete() {
                let c = capped.completeness();
                assert!((0.0..1.0).contains(&c), "cap {cap}: completeness {c}");
            }
        }
    }

    #[test]
    fn expired_deadline_returns_an_empty_partial() {
        let config = base_config();
        let (kg, index) = build_with(&config);
        let p = pool();
        let est = estimator_for(&config);
        let q = ConceptQuery::from_names(&kg, &["Exchange"]).unwrap();
        let dead = Deadline::after(std::time::Duration::ZERO);
        let r = rollup_progressive(&index, &kg, &q, 4, &config, &p, &est, Some(&dead), None);
        assert!(!r.is_complete());
        assert_eq!(r.completeness(), 0.0);
        assert!(r.items.is_empty());
        assert_eq!(r.walks, 0);
        let d = drilldown_progressive(
            &index,
            &kg,
            &q,
            4,
            &config,
            &p,
            &est,
            SbrFactors::CSD,
            Some(&dead),
            None,
        );
        assert!(!d.is_complete());
        assert!(d.items.is_empty());
        // A deadline that never fires changes nothing.
        let live = Deadline::after(std::time::Duration::from_secs(3600));
        let bounded = rollup_progressive(&index, &kg, &q, 4, &config, &p, &est, Some(&live), None);
        let unbounded = rollup_progressive(&index, &kg, &q, 4, &config, &p, &est, None, None);
        assert_eq!(bounded, unbounded);
    }

    #[test]
    fn ontology_only_needs_no_walks() {
        let mut config = base_config();
        config.ablation = ScoreAblation::OntologyOnly;
        let (kg, index) = build_with(&config);
        let p = pool();
        let est = estimator_for(&config);
        let q = ConceptQuery::from_names(&kg, &["Exchange", "Crime"]).unwrap();
        let classic = rollup(&index, &kg, &q, 4, &config, &p);
        let prog = rollup_progressive(&index, &kg, &q, 4, &config, &p, &est, None, None);
        assert!(prog.is_complete());
        assert_eq!(prog.walks, 0, "ontology-only scores are exact");
        assert_eq!(prog.rounds, 0);
        let hits: Vec<RollupHit> = prog.items.iter().map(|r| r.item.clone()).collect();
        assert_eq!(hits, classic);
        for r in &prog.items {
            assert_eq!(r.walks_spent, 0);
        }
    }

    #[test]
    fn empty_query_is_trivially_complete() {
        let config = base_config();
        let (kg, index) = build_with(&config);
        let p = pool();
        let est = estimator_for(&config);
        let q = ConceptQuery::new([]);
        let r = rollup_progressive(&index, &kg, &q, 4, &config, &p, &est, None, None);
        assert!(r.is_complete());
        assert!(r.items.is_empty());
        assert_eq!(r.candidates, 0);
    }
}
