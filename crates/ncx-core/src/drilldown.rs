//! The drill-down operation — Definition 2 of the paper.
//!
//! Given a query `Q`, suggest subtopic concepts `c'` that appear in the
//! matched documents `D(Q)`, ranked by
//!
//! ```text
//! sbr(c, Q) = coverage(c, Q) · specificity(c) · diversity(c, Q)
//! ```
//!
//! * `coverage` — `Σ_{d∈D(Q)} cdr(c, d)`: favour subtopics relevant to
//!   many matched documents;
//! * `specificity` — `log(|V_I| / |Ψ(c)|)`: suppress trivial subtopics
//!   like *Person*;
//! * `diversity` — `|∪_{d∈D(Q)} ME(c, d)| / |D(Q ∪ {c})|`: favour
//!   subtopics backed by many *distinct* entities rather than one popular
//!   entity repeated everywhere.
//!
//! # Parallel execution
//!
//! Both candidate sweeps iterate every matched document, which dominates
//! drill-down latency on large result sets. With
//! [`NcxConfig::parallelism`] above one worker, documents are processed
//! in fixed-size batches on the engine's persistent worker pool
//! ([`crate::par::Pool`]) and the per-batch partial maps are merged **in
//! batch order**, so any parallel worker count produces identical
//! output. Coverage is a sum of floats, and the batched summation
//! associates differently from the sequential left fold, so parallel
//! scores can differ from sequential ones by float rounding (≲ 1e-12
//! relative) — `Fixed(1)` runs the literal sequential fold; document
//! sets, entity sets and counts are always bit-identical.

use crate::budget::{check_deadline, Deadline};
use crate::config::NcxConfig;
use crate::error::QueryError;
use crate::indexer::NcxIndex;
use crate::par::Pool;
use crate::query::ConceptQuery;
use crate::rollup::matched_docs_bounded;
use ncx_index::TopK;
use ncx_kg::{ontology, ConceptId, DocId, InstanceId, KnowledgeGraph};
use ncx_obs::{Phase, QueryTrace, Stopwatch};
use rustc_hash::{FxHashMap, FxHashSet};

/// Documents per parallel sweep batch. Fixed (not worker-derived) so the
/// merged coverage sums do not depend on the worker count.
const SWEEP_BATCH: usize = 64;

/// Minimum matched-document count before the parallel sweeps engage:
/// two full batches, the smallest split that can overlap at all. The
/// floor used to sit at 256 to amortise per-region thread spawns
/// (~10 µs); dispatching to the persistent pool's parked workers costs
/// ~1 µs, so anything worth splitting is worth dispatching.
const PAR_MIN_DOCS: usize = 2 * SWEEP_BATCH;

/// A suggested drill-down subtopic with its score decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Subtopic {
    /// The suggested concept.
    pub concept: ConceptId,
    /// `sbr(c, Q)`.
    pub score: f64,
    /// Coverage component.
    pub coverage: f64,
    /// Specificity component.
    pub specificity: f64,
    /// Diversity component.
    pub diversity: f64,
    /// `|D(Q ∪ {c})|` within the examined document set.
    pub matching_docs: usize,
    /// Distinct matched entities supporting the subtopic.
    pub distinct_entities: usize,
}

/// Which factors of `sbr` to use — the ablation knob of Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SbrFactors {
    /// Coverage only.
    C,
    /// Coverage × Specificity.
    CS,
    /// Coverage × Specificity × Diversity (the full ranking).
    CSD,
}

impl SbrFactors {
    /// Display label matching Fig. 8's legend.
    pub fn label(self) -> &'static str {
        match self {
            SbrFactors::C => "C",
            SbrFactors::CS => "C + S",
            SbrFactors::CSD => "C + S + D",
        }
    }
}

/// The drill-down operation with the full ranking (`C·S·D`).
pub fn drilldown(
    index: &NcxIndex,
    kg: &KnowledgeGraph,
    query: &ConceptQuery,
    k: usize,
    config: &NcxConfig,
    pool: &Pool,
) -> Vec<Subtopic> {
    drilldown_with_factors(index, kg, query, k, config, pool, SbrFactors::CSD)
}

/// Drill-down with a configurable factor set (used by the Fig. 8
/// ablation).
pub fn drilldown_with_factors(
    index: &NcxIndex,
    kg: &KnowledgeGraph,
    query: &ConceptQuery,
    k: usize,
    config: &NcxConfig,
    pool: &Pool,
    factors: SbrFactors,
) -> Vec<Subtopic> {
    drilldown_bounded(index, kg, query, k, config, pool, factors, None)
        .expect("unbounded drilldown can only fail on a lazy-shard store fault")
}

/// [`drilldown_with_factors`] under an optional [`Deadline`]. `None`
/// reproduces the unbounded operation exactly. With a live deadline the
/// clock is tested between pipeline stages, every
/// [`QueryBudget::check_every`](crate::budget::QueryBudget) documents on
/// the sequential sweeps, and before each parallel dispatch — an
/// expired deadline fails the query (never silently truncates the
/// suggestion list).
#[allow(clippy::too_many_arguments)]
pub fn drilldown_bounded(
    index: &NcxIndex,
    kg: &KnowledgeGraph,
    query: &ConceptQuery,
    k: usize,
    config: &NcxConfig,
    pool: &Pool,
    factors: SbrFactors,
    deadline: Option<&Deadline>,
) -> Result<Vec<Subtopic>, QueryError> {
    drilldown_bounded_traced(index, kg, query, k, config, pool, factors, deadline, None)
}

/// [`drilldown_bounded`] with an optional per-query trace: index
/// matching is timed into [`Phase::Matching`], both candidate sweeps
/// plus the score fold into [`Phase::MergeRank`]. `None` is exactly
/// [`drilldown_bounded`] — timing never changes results.
#[allow(clippy::too_many_arguments)]
pub fn drilldown_bounded_traced(
    index: &NcxIndex,
    kg: &KnowledgeGraph,
    query: &ConceptQuery,
    k: usize,
    config: &NcxConfig,
    pool: &Pool,
    factors: SbrFactors,
    deadline: Option<&Deadline>,
    trace: Option<&QueryTrace>,
) -> Result<Vec<Subtopic>, QueryError> {
    let matching_sw = Stopwatch::start();
    let matched = matched_docs_bounded(index, kg, query, config, pool, deadline)?;
    if let Some(t) = trace {
        t.add(Phase::Matching, matching_sw.elapsed());
    }
    let merge_sw = Stopwatch::start();
    if matched.is_empty() {
        return Ok(Vec::new());
    }
    let check_every = (config.query_budget.check_every as usize).max(1);
    // Deterministic, capped document set.
    let mut docs: Vec<DocId> = matched.into_keys().collect();
    docs.sort_unstable();
    docs.truncate(config.drilldown_doc_cap);

    // Concepts to exclude: the query itself and its ancestors (re-rolling
    // up is not a drill-*down*).
    let mut excluded: FxHashSet<ConceptId> = FxHashSet::default();
    for &c in query.concepts() {
        excluded.insert(c);
        excluded.extend(ontology::ancestors(kg, c));
    }

    let workers = config.parallelism.workers().min(pool.width());
    let parallel = workers > 1 && docs.len() >= PAR_MIN_DOCS;
    let num_batches = docs.len().div_ceil(SWEEP_BATCH);
    let batch_range = |bi: usize| {
        let start = bi * SWEEP_BATCH;
        start..(start + SWEEP_BATCH).min(docs.len())
    };

    // Sweep 1: coverage and D(Q ∪ {c}) from the per-document concept
    // lists. One per-document body shared by both execution paths — the
    // seq/par equivalence contract depends on them staying identical;
    // only the fold structure (and thus float-sum association) differs.
    type Sweep1 = (FxHashMap<ConceptId, f64>, FxHashMap<ConceptId, usize>);
    let sweep1_doc = |d: DocId, (cov, cnt): &mut Sweep1| {
        for &(c, cdr) in index.concepts_of_doc(d) {
            if excluded.contains(&c) {
                continue;
            }
            *cov.entry(c).or_insert(0.0) += cdr;
            *cnt.entry(c).or_insert(0) += 1;
        }
    };
    let mut sweep1: Sweep1 = Default::default();
    if parallel {
        check_deadline(deadline)?;
        let parts: Vec<Sweep1> = pool.run_batched(num_batches, workers, 1, |bi| {
            let mut acc: Sweep1 = Default::default();
            for &d in &docs[batch_range(bi)] {
                sweep1_doc(d, &mut acc);
            }
            acc
        });
        for (cov, cnt) in parts {
            for (c, x) in cov {
                *sweep1.0.entry(c).or_insert(0.0) += x;
            }
            for (c, x) in cnt {
                *sweep1.1.entry(c).or_insert(0) += x;
            }
        }
    } else {
        // Chunked for the deadline cadence; the per-document body (and
        // thus the fold) is identical to an unchunked loop.
        for chunk in docs.chunks(check_every) {
            check_deadline(deadline)?;
            for &d in chunk {
                sweep1_doc(d, &mut sweep1);
            }
        }
    }
    let (coverage, doc_count) = sweep1;

    // Sweep 2: distinct matched entities per candidate (set unions are
    // order-independent, so the parallel merge is exact).
    type Sweep2 = FxHashMap<ConceptId, FxHashSet<InstanceId>>;
    let sweep2_doc = |d: DocId, sets: &mut Sweep2| {
        for &(v, _) in index.entity_index.entities_of(d) {
            for &c in kg.concepts_of(v) {
                if coverage.contains_key(&c) {
                    sets.entry(c).or_default().insert(v);
                }
            }
        }
    };
    let mut entity_sets: Sweep2 = Sweep2::default();
    if parallel {
        check_deadline(deadline)?;
        let parts: Vec<Sweep2> = pool.run_batched(num_batches, workers, 1, |bi| {
            let mut sets = Sweep2::default();
            for &d in &docs[batch_range(bi)] {
                sweep2_doc(d, &mut sets);
            }
            sets
        });
        for part in parts {
            for (c, vs) in part {
                entity_sets.entry(c).or_default().extend(vs);
            }
        }
    } else {
        for chunk in docs.chunks(check_every) {
            check_deadline(deadline)?;
            for &d in chunk {
                sweep2_doc(d, &mut entity_sets);
            }
        }
    }
    check_deadline(deadline)?;

    let mut top = TopK::new(k);
    let mut details: FxHashMap<ConceptId, Subtopic> = FxHashMap::default();
    for (&c, &cov) in &coverage {
        let matching = doc_count[&c];
        let distinct = entity_sets.get(&c).map_or(0, FxHashSet::len);
        let specificity = kg.specificity(c);
        let diversity = if matching == 0 {
            0.0
        } else {
            distinct as f64 / matching as f64
        };
        let score = match factors {
            SbrFactors::C => cov,
            SbrFactors::CS => cov * specificity,
            SbrFactors::CSD => cov * specificity * diversity,
        };
        top.push(c, score);
        details.insert(
            c,
            Subtopic {
                concept: c,
                score,
                coverage: cov,
                specificity,
                diversity,
                matching_docs: matching,
                distinct_entities: distinct,
            },
        );
    }
    let out = top
        .into_sorted_vec()
        .into_iter()
        .map(|(c, _)| details.remove(&c).expect("scored"))
        .collect();
    if let Some(t) = trace {
        t.add(Phase::MergeRank, merge_sw.elapsed());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexer::Indexer;
    use ncx_index::{DocumentStore, NewsSource};
    use ncx_kg::GraphBuilder;
    use ncx_text::{GazetteerLinker, NlpPipeline};

    use crate::config::Parallelism;

    /// A fresh pool wide enough for every `Fixed(n)` these tests use.
    fn pool() -> Pool {
        Pool::new(8)
    }

    /// Corpus themed around crypto: querying Exchange should suggest
    /// Crime and Regulator subtopics.
    fn setup() -> (KnowledgeGraph, DocumentStore) {
        let mut b = GraphBuilder::new();
        let org = b.concept("Organization");
        let exch = b.concept("Exchange");
        b.broader(exch, org);
        let crime = b.concept("Crime");
        let regulator = b.concept("Regulator");
        let person = b.concept("Person");
        let ftx = b.instance("FTX");
        let bnb = b.instance("Binance");
        let kraken = b.instance("Kraken");
        let fraud = b.instance("fraud");
        let launder = b.instance("laundering");
        let sec = b.instance("SEC");
        let cftc = b.instance("CFTC");
        let sbf = b.instance("Sam Bankman-Fried");
        b.member(exch, ftx);
        b.member(exch, bnb);
        b.member(exch, kraken);
        b.member(crime, fraud);
        b.member(crime, launder);
        b.member(regulator, sec);
        b.member(regulator, cftc);
        b.member(person, sbf);
        b.fact(ftx, "accusedOf", fraud);
        b.fact(bnb, "accusedOf", launder);
        b.fact(sec, "sued", ftx);
        b.fact(sec, "sued", bnb);
        b.fact(cftc, "sued", kraken);
        b.fact(sbf, "founded", ftx);
        let kg = b.build();

        let mut store = DocumentStore::new();
        store.add(
            NewsSource::Reuters,
            "FTX fraud".into(),
            "SEC sued FTX over fraud. Sam Bankman-Fried responded.".into(),
            0,
        );
        store.add(
            NewsSource::Reuters,
            "Binance laundering".into(),
            "SEC probed Binance for laundering.".into(),
            1,
        );
        store.add(
            NewsSource::Reuters,
            "Kraken settles".into(),
            "CFTC settled with Kraken.".into(),
            2,
        );
        (kg, store)
    }

    fn build() -> (KnowledgeGraph, NcxIndex, NcxConfig) {
        let (kg, store) = setup();
        let nlp = NlpPipeline::new(GazetteerLinker::build(&kg));
        let config = NcxConfig {
            parallelism: Parallelism::sequential(),
            samples: 200,
            // Allow broad concepts in this tiny KG.
            max_member_fraction: 0.9,
            ..NcxConfig::default()
        };
        let index = Indexer::new(&kg, &nlp, config.clone()).index_corpus(&store);
        (kg, index, config)
    }

    #[test]
    fn suggests_cooccurring_subtopics() {
        let (kg, index, config) = build();
        let q = ConceptQuery::from_names(&kg, &["Exchange"]).unwrap();
        let subs = drilldown(&index, &kg, &q, 10, &config, &pool());
        let names: Vec<&str> = subs.iter().map(|s| kg.concept_label(s.concept)).collect();
        assert!(names.contains(&"Crime"), "{names:?}");
        assert!(names.contains(&"Regulator"), "{names:?}");
    }

    #[test]
    fn query_concepts_and_ancestors_excluded() {
        let (kg, index, config) = build();
        let q = ConceptQuery::from_names(&kg, &["Exchange"]).unwrap();
        let subs = drilldown(&index, &kg, &q, 10, &config, &pool());
        for s in &subs {
            let label = kg.concept_label(s.concept);
            assert_ne!(label, "Exchange");
            assert_ne!(label, "Organization", "ancestor must be excluded");
        }
    }

    #[test]
    fn score_decomposition_consistent() {
        let (kg, index, config) = build();
        let q = ConceptQuery::from_names(&kg, &["Exchange"]).unwrap();
        for s in drilldown(&index, &kg, &q, 10, &config, &pool()) {
            let expect = s.coverage * s.specificity * s.diversity;
            assert!((s.score - expect).abs() < 1e-9);
            assert!(s.matching_docs > 0);
            assert!(s.distinct_entities > 0);
        }
    }

    #[test]
    fn diversity_rewards_many_distinct_entities() {
        let (kg, index, config) = build();
        let q = ConceptQuery::from_names(&kg, &["Exchange"]).unwrap();
        let subs = drilldown(&index, &kg, &q, 10, &config, &pool());
        let get = |name: &str| {
            subs.iter()
                .find(|s| kg.concept_label(s.concept) == name)
                .unwrap()
        };
        // Regulator: SEC + CFTC over 3 docs; diversity ≤ 1 but with two
        // entities over three docs = 2/3; Crime: fraud + laundering over 2
        // docs = 1.0.
        let crime = get("Crime");
        let reg = get("Regulator");
        assert!((crime.diversity - 1.0).abs() < 1e-9, "{crime:?}");
        assert!((reg.diversity - 2.0 / 3.0).abs() < 1e-9, "{reg:?}");
    }

    #[test]
    fn ablation_factor_sets_differ() {
        let (kg, index, config) = build();
        let q = ConceptQuery::from_names(&kg, &["Exchange"]).unwrap();
        let c = drilldown_with_factors(&index, &kg, &q, 10, &config, &pool(), SbrFactors::C);
        let cs = drilldown_with_factors(&index, &kg, &q, 10, &config, &pool(), SbrFactors::CS);
        let csd = drilldown_with_factors(&index, &kg, &q, 10, &config, &pool(), SbrFactors::CSD);
        assert_eq!(c.len(), cs.len());
        assert_eq!(cs.len(), csd.len());
        // With C only, the score must equal coverage.
        for s in &c {
            assert!((s.score - s.coverage).abs() < 1e-12);
        }
        assert_eq!(SbrFactors::CSD.label(), "C + S + D");
    }

    #[test]
    fn parallel_drilldown_equivalent_to_sequential() {
        use crate::config::Parallelism;
        // A corpus big enough to trip the batched sweeps (≥ PAR_MIN_DOCS
        // matched docs).
        let (kg, _) = setup();
        let mut store = DocumentStore::new();
        let texts = [
            "SEC sued FTX over fraud. Sam Bankman-Fried responded.",
            "SEC probed Binance for laundering.",
            "CFTC settled with Kraken over fraud claims.",
            "Binance and Kraken face fresh laundering scrutiny.",
        ];
        for i in 0..600 {
            store.add(
                NewsSource::Reuters,
                format!("doc {i}"),
                texts[i % texts.len()].into(),
                i as u32,
            );
        }
        let nlp = NlpPipeline::new(GazetteerLinker::build(&kg));
        let base = NcxConfig {
            parallelism: Parallelism::sequential(),
            samples: 10,
            max_member_fraction: 0.9,
            ..NcxConfig::default()
        };
        let index = Indexer::new(&kg, &nlp, base.clone()).index_corpus(&store);
        let q = ConceptQuery::from_names(&kg, &["Exchange"]).unwrap();

        let seq_cfg = NcxConfig {
            parallelism: Parallelism::sequential(),
            ..base.clone()
        };
        let seq = drilldown(&index, &kg, &q, 20, &seq_cfg, &pool());
        assert!(!seq.is_empty());
        for fixed in [2, 4, 7] {
            let par_cfg = NcxConfig {
                parallelism: Parallelism::Fixed(fixed),
                ..base.clone()
            };
            let par = drilldown(&index, &kg, &q, 20, &par_cfg, &pool());
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.concept, b.concept, "ranking diverged at {fixed} workers");
                assert_eq!(a.matching_docs, b.matching_docs);
                assert_eq!(a.distinct_entities, b.distinct_entities);
                // Coverage sums may associate differently: allow float
                // rounding only.
                assert!(
                    (a.score - b.score).abs() <= 1e-9 * a.score.abs().max(1.0),
                    "score drift at {fixed} workers: {} vs {}",
                    a.score,
                    b.score
                );
            }
        }
    }

    #[test]
    fn bounded_drilldown_matches_unbounded_and_rejects_expired() {
        use crate::budget::Deadline;
        use crate::error::QueryError;
        let (kg, index, config) = build();
        let p = pool();
        let q = ConceptQuery::from_names(&kg, &["Exchange"]).unwrap();
        let plain = drilldown(&index, &kg, &q, 10, &config, &p);
        let live = Deadline::after(std::time::Duration::from_secs(3600));
        assert_eq!(
            drilldown_bounded(
                &index,
                &kg,
                &q,
                10,
                &config,
                &p,
                SbrFactors::CSD,
                Some(&live)
            )
            .unwrap(),
            plain
        );
        let dead = Deadline::after(std::time::Duration::ZERO);
        assert!(matches!(
            drilldown_bounded(
                &index,
                &kg,
                &q,
                10,
                &config,
                &p,
                SbrFactors::CSD,
                Some(&dead)
            ),
            Err(QueryError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn no_matches_no_subtopics() {
        let (kg, index, config) = build();
        let person_only = ConceptQuery::from_names(&kg, &["Person"]).unwrap();
        // Person matches d0 (SBF); drill-down on an unmatched concept:
        let mut b = GraphBuilder::new();
        let ghost = b.concept("Ghost");
        let _ = ghost;
        let subs = drilldown(&index, &kg, &person_only, 10, &config, &pool());
        // d0's other concepts suggested.
        assert!(!subs.is_empty());
        let q_empty = ConceptQuery::new([]);
        assert!(drilldown(&index, &kg, &q_empty, 10, &config, &pool()).is_empty());
    }

    #[test]
    fn k_limits_suggestions() {
        let (kg, index, config) = build();
        let q = ConceptQuery::from_names(&kg, &["Exchange"]).unwrap();
        let subs = drilldown(&index, &kg, &q, 1, &config, &pool());
        assert_eq!(subs.len(), 1);
    }

    #[test]
    fn drilldown_narrows_results() {
        let (kg, index, config) = build();
        let q = ConceptQuery::from_names(&kg, &["Exchange"]).unwrap();
        let subs = drilldown(&index, &kg, &q, 10, &config, &pool());
        let crime = subs
            .iter()
            .find(|s| kg.concept_label(s.concept) == "Crime")
            .unwrap();
        let augmented = q.with(crime.concept);
        let narrowed = crate::rollup::matched_docs(&index, &kg, &augmented, &config, &pool());
        let original = crate::rollup::matched_docs(&index, &kg, &q, &config, &pool());
        assert!(narrowed.len() <= original.len());
        assert_eq!(narrowed.len(), crime.matching_docs);
    }
}
