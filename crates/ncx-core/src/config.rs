//! Engine configuration.

use crate::budget::QueryBudget;
use crate::error::ConfigError;
use ncx_kg::traversal::Hops;

/// Which factors of `cdr(c, d)` to use — the scoring-design ablation
/// (Eq. 2 multiplies ontology and context relevance; dropping either
/// factor isolates its contribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoreAblation {
    /// `cdr = cdr_o · cdr_c` (the paper's scheme).
    #[default]
    Full,
    /// `cdr = cdr_o` (ontology relevance only; no KG connectivity).
    OntologyOnly,
    /// `cdr = cdr_c` (context relevance only; no pivot-entity weighting).
    ContextOnly,
}

/// Width of the engine's persistent worker pool
/// ([`crate::par::Pool`]), shared by both indexing passes and the
/// query-time roll-up/drill-down sweeps. Formerly two knobs — a
/// `threads` count for indexing and a separate query parallelism — now
/// one: the pool is a single long-lived resource sized once at engine
/// construction.
///
/// `Fixed(1)` reproduces the sequential code path bit-for-bit: walk
/// seeds derive from `(doc, concept)` via
/// [`pair_seed`](crate::relevance::estimator::pair_seed), so scores
/// never depend on scheduling, and the sequential operators are kept as
/// the literal single-worker path.
///
/// ```
/// use ncx_core::config::Parallelism;
///
/// assert!(Parallelism::Auto.workers() >= 1);
/// assert_eq!(Parallelism::Fixed(4).workers(), 4);
/// assert!(Parallelism::sequential().is_sequential());
/// assert!(!Parallelism::Fixed(8).is_sequential());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One worker per available core.
    #[default]
    Auto,
    /// Exactly this many workers (must be ≥ 1; a literal `Fixed(0)` is
    /// rejected by [`NcxConfig::validate`] and clamped to 1 by
    /// [`workers`](Self::workers) as a second line of defence).
    Fixed(usize),
}

/// Available cores, resolved once — `std::thread::available_parallelism`
/// re-reads cgroup quota files on every call (microseconds of file I/O),
/// which is too slow for per-query resolution.
fn available_cores() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

impl Parallelism {
    /// The sequential configuration, `Fixed(1)`.
    pub fn sequential() -> Self {
        Parallelism::Fixed(1)
    }

    /// Resolved worker count (≥ 1 — a zero knob can neither divide by
    /// zero in batch math nor silently disable execution).
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Auto => available_cores(),
            Parallelism::Fixed(n) => n.max(1),
        }
    }

    /// Whether this resolves to a single worker.
    pub fn is_sequential(self) -> bool {
        self.workers() == 1
    }
}

/// Adaptive walk-budget rule for connectivity estimates.
///
/// [`NcxConfig::samples`] stays the *maximum* walks per `(document,
/// concept)` estimate; this rule lets an estimate stop early once a
/// deterministic convergence criterion says more walks cannot move the
/// score: once at least [`min_walks`](Self::min_walks) samples are in,
/// the rule is checked at every consumed-sample count divisible by
/// [`check_interval`](Self::check_interval), and the estimate stops if
/// the **relative standard error** of the running mean (`s / (x̄·√n)`,
/// Welford-accumulated) has dropped to
/// [`target_rse`](Self::target_rse).
///
/// The rule is a pure function of the walk values, which are themselves
/// a pure function of the per-pair seed — so adaptivity preserves the
/// determinism contract bit-for-bit: the same estimate stops at the same
/// sample on one worker or sixty-four, across runs and machines.
///
/// Like any value-dependent stopping rule, early stopping trades a
/// small optional-stopping bias — bounded by `target_rse`, since an
/// estimate only stops once its mean is pinned that tightly — for the
/// saved walks. Disable the rule where strict fixed-sample
/// unbiasedness matters.
///
/// `target_rse <= 0` disables the rule entirely
/// ([`WalkBudget::disabled`]); every estimate then runs its full sample
/// budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkBudget {
    /// Minimum samples an estimate always consumes before the stopping
    /// rule may fire (≥ 2 when adaptive: a variance needs two samples).
    pub min_walks: u32,
    /// Stopping-rule cadence, in samples, after the minimum (≥ 1).
    pub check_interval: u32,
    /// Relative-standard-error threshold; `<= 0.0` disables adaptivity.
    pub target_rse: f64,
}

impl WalkBudget {
    /// No adaptive stopping: every estimate runs its full sample budget.
    pub const fn disabled() -> Self {
        Self {
            min_walks: 0,
            check_interval: 1,
            target_rse: 0.0,
        }
    }

    /// Whether the stopping rule is active.
    pub fn is_adaptive(&self) -> bool {
        self.target_rse > 0.0
    }
}

impl Default for WalkBudget {
    /// Conservative adaptivity: stop only once the score is pinned to
    /// ±15 % relative standard error, never before 12 samples.
    fn default() -> Self {
        Self {
            min_walks: 12,
            check_interval: 4,
            target_rse: 0.15,
        }
    }
}

/// Knobs of the progressive (anytime) query executor — the
/// round/tranche loop behind
/// [`rollup_progressive`](crate::engine::NcExplorer::rollup_progressive)
/// and
/// [`drilldown_progressive`](crate::engine::NcExplorer::drilldown_progressive).
///
/// Each round advances every still-active candidate's connectivity
/// estimate by [`tranche`](Self::tranche) walks; with
/// [`racing`](Self::racing) on, candidates whose [`z`](Self::z)-scaled
/// confidence interval has separated from the k-th boundary stop
/// consuming walks (racing-style successive halving). A deadline or the
/// [`max_walks`](Self::max_walks) budget cuts the loop between rounds,
/// yielding a typed partial result. None of these knobs changes a
/// *completed* result's bits — they only control how (and whether) the
/// executor gets there early.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressiveConfig {
    /// Walks granted to each active candidate per refinement round
    /// (≥ 1). Smaller tranches cut sooner after a deadline and prune
    /// sooner, at more per-round overhead.
    pub tranche: u32,
    /// z-score of the per-candidate confidence interval used for the
    /// top-k separation rule and reported on every
    /// [`Ranked`](crate::progressive::Ranked) item (finite, > 0;
    /// default 1.96 ≈ 95 %).
    pub z: f64,
    /// Early-termination top-k: stop walking candidates whose interval
    /// can no longer overlap the k-th boundary. Off, every candidate
    /// runs to its own convergence — the bit-for-bit reference mode.
    pub racing: bool,
    /// Optional total walk budget per query: the loop cuts between
    /// rounds once this many walks were spent, returning a partial
    /// result. Deterministic (unlike a wall-clock deadline), so tests
    /// pin partial-result contracts with it. `None` = unlimited.
    pub max_walks: Option<u64>,
}

impl Default for ProgressiveConfig {
    fn default() -> Self {
        Self {
            tranche: 8,
            z: 1.96,
            racing: true,
            max_walks: None,
        }
    }
}

/// Persistence knobs of the layered `ncx-store` snapshot format.
///
/// Grouped separately from the scoring parameters because they describe
/// the *on-disk* shape of the engine, not its answers: changing them
/// never changes a query result, only how snapshots are laid out and
/// when the generation stack gets folded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Number of hash-partitioned concept-posting shards each generation
    /// writes ([`NcExplorer::save`](crate::engine::NcExplorer::save) /
    /// [`flush_delta`](crate::engine::NcExplorer::flush_delta)). More
    /// shards let the serving tier load partitions independently;
    /// reading accepts whatever shard count the snapshot was written
    /// with.
    pub snapshot_shards: u32,
    /// Generation-stack depth at which
    /// [`checkpoint`](crate::engine::NcExplorer::checkpoint) folds the
    /// stack back into a single base. Each delta flush appends one
    /// generation; once the stack exceeds this many layers, the next
    /// checkpoint compacts. Higher values make flushes cheaper for
    /// longer but slow cold opens (more files to replay).
    pub max_generations: u32,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            snapshot_shards: 8,
            max_generations: 6,
        }
    }
}

/// Parameters of the NCExplorer engine. `Default` reproduces the paper's
/// evaluation settings: τ = 2, β = 0.5, 50 samples per connectivity score,
/// reachability-guided sampling on.
#[derive(Debug, Clone, PartialEq)]
pub struct NcxConfig {
    /// Hop constraint τ of the connectivity score (Eq. 4).
    pub tau: Hops,
    /// Damping factor β penalising longer paths (Eq. 4).
    pub beta: f64,
    /// Random-walk samples per (concept, document) connectivity estimate
    /// (the *maximum* — see [`walk_budget`](Self::walk_budget)).
    pub samples: u32,
    /// Adaptive early-stopping rule for connectivity estimates; see
    /// [`WalkBudget`]. Deterministic, so it never breaks the
    /// schedule-independence of scores.
    pub walk_budget: WalkBudget,
    /// Guide walks with the k-hop reachability oracle (paper's default;
    /// turning this off reproduces the "w/o reachability index" series of
    /// Fig. 7).
    pub guided: bool,
    /// Seed for the deterministic per-(doc, concept) walk RNG.
    pub seed: u64,
    /// Maximum candidate concepts scored per document (highest ontology
    /// relevance first); bounds indexing cost on concept-dense documents.
    pub max_concepts_per_doc: usize,
    /// Concepts with `|Ψ(c)|` above this fraction of `|V_I|` are skipped as
    /// trivially broad ("Thing", "Agent", …).
    pub max_member_fraction: f64,
    /// Width of the engine's persistent worker pool, used by both
    /// indexing passes and query-time roll-up/drill-down execution.
    /// `Fixed(1)` takes the sequential path bit-for-bit. The pool is
    /// sized once at engine construction;
    /// [`NcExplorer::set_parallelism`](crate::engine::NcExplorer::set_parallelism)
    /// can narrow (but not widen) the execution width afterwards.
    pub parallelism: Parallelism,
    /// Capacity of the per-target distance cache (total across shards).
    pub oracle_cache: usize,
    /// Shard count of the per-target distance cache (rounded up to a
    /// power of two). More shards reduce lock contention between
    /// concurrent scorers for different targets.
    pub oracle_shards: usize,
    /// When a roll-up concept has no direct posting for a document, fall
    /// back to its narrower ("edge") concepts, as §III-A1 prescribes.
    pub edge_concept_fallback: bool,
    /// Maximum documents examined per drill-down candidate enumeration.
    pub drilldown_doc_cap: usize,
    /// Scoring-design ablation (default: the paper's full product).
    pub ablation: ScoreAblation,
    /// Persistence layout and compaction policy; see [`StoreConfig`].
    pub store: StoreConfig,
    /// Per-query time budget honoured by the deadline-aware query
    /// entry points and the serving layer's admission queue; see
    /// [`QueryBudget`]. Unlimited by default — the plain
    /// `rollup`/`drilldown` methods always run to completion
    /// regardless of this knob.
    pub query_budget: QueryBudget,
    /// Progressive (anytime) executor knobs; see [`ProgressiveConfig`].
    pub progressive: ProgressiveConfig,
}

impl Default for NcxConfig {
    fn default() -> Self {
        Self {
            tau: 2,
            beta: 0.5,
            samples: 50,
            walk_budget: WalkBudget::default(),
            guided: true,
            seed: 0x5ca1ab1e,
            max_concepts_per_doc: 64,
            max_member_fraction: 0.2,
            parallelism: Parallelism::Auto,
            oracle_cache: 4096,
            oracle_shards: 16,
            edge_concept_fallback: true,
            drilldown_doc_cap: 2000,
            ablation: ScoreAblation::default(),
            store: StoreConfig::default(),
            query_budget: QueryBudget::default(),
            progressive: ProgressiveConfig::default(),
        }
    }
}

impl NcxConfig {
    /// Validates parameter ranges, returning the first problem found as
    /// a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn invalid(param: &'static str, detail: impl Into<String>) -> Result<(), ConfigError> {
            Err(ConfigError::Invalid {
                param,
                detail: detail.into(),
            })
        }
        if self.tau == 0 {
            return invalid("tau", "must be at least 1");
        }
        if !(0.0..=1.0).contains(&self.beta) {
            return invalid("beta", format!("must be in [0, 1], got {}", self.beta));
        }
        if self.samples == 0 {
            return invalid("samples", "must be at least 1");
        }
        if !self.walk_budget.target_rse.is_finite() || self.walk_budget.target_rse < 0.0 {
            return invalid(
                "walk_budget.target_rse",
                format!(
                    "must be finite and >= 0, got {}",
                    self.walk_budget.target_rse
                ),
            );
        }
        if self.walk_budget.is_adaptive() {
            if self.walk_budget.min_walks < 2 {
                return invalid("walk_budget.min_walks", "must be at least 2 when adaptive");
            }
            if self.walk_budget.check_interval == 0 {
                return invalid("walk_budget.check_interval", "must be at least 1");
            }
        }
        if !(0.0..=1.0).contains(&self.max_member_fraction) {
            return invalid("max_member_fraction", "must be in [0, 1]");
        }
        if self.parallelism == Parallelism::Fixed(0) {
            return invalid("parallelism", "must be Fixed(n ≥ 1) or Auto");
        }
        if self.oracle_shards == 0 {
            return invalid("oracle_shards", "must be at least 1");
        }
        if self.store.snapshot_shards == 0 {
            return invalid("store.snapshot_shards", "must be at least 1");
        }
        if self.store.max_generations == 0 {
            return invalid("store.max_generations", "must be at least 1");
        }
        if self.query_budget.check_every == 0 {
            return invalid("query_budget.check_every", "must be at least 1");
        }
        if let Some(limit) = self.query_budget.time_limit {
            if limit == std::time::Duration::ZERO {
                return invalid(
                    "query_budget.time_limit",
                    "must be positive (use None to disable deadlines)",
                );
            }
        }
        if self.progressive.tranche == 0 {
            return invalid("progressive.tranche", "must be at least 1");
        }
        if !self.progressive.z.is_finite() || self.progressive.z <= 0.0 {
            return invalid(
                "progressive.z",
                format!("must be finite and > 0, got {}", self.progressive.z),
            );
        }
        if self.progressive.max_walks == Some(0) {
            return invalid(
                "progressive.max_walks",
                "must be positive (use None for unlimited)",
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = NcxConfig::default();
        assert_eq!(c.tau, 2);
        assert_eq!(c.beta, 0.5);
        assert_eq!(c.samples, 50);
        assert!(c.guided);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_params() {
        let bad_tau = NcxConfig {
            tau: 0,
            ..NcxConfig::default()
        };
        assert!(bad_tau.validate().is_err());
        let bad_beta = NcxConfig {
            beta: 1.5,
            ..NcxConfig::default()
        };
        assert!(bad_beta.validate().is_err());
        let bad_samples = NcxConfig {
            samples: 0,
            ..NcxConfig::default()
        };
        assert!(bad_samples.validate().is_err());
    }

    #[test]
    fn walk_budget_validation() {
        assert!(!WalkBudget::disabled().is_adaptive());
        assert!(WalkBudget::default().is_adaptive());
        let ok = NcxConfig::default();
        assert!(ok.validate().is_ok());
        let bad_rse = NcxConfig {
            walk_budget: WalkBudget {
                target_rse: f64::NAN,
                ..WalkBudget::default()
            },
            ..NcxConfig::default()
        };
        assert!(bad_rse.validate().is_err());
        let bad_min = NcxConfig {
            walk_budget: WalkBudget {
                min_walks: 1,
                ..WalkBudget::default()
            },
            ..NcxConfig::default()
        };
        assert!(bad_min.validate().is_err());
        let bad_interval = NcxConfig {
            walk_budget: WalkBudget {
                check_interval: 0,
                ..WalkBudget::default()
            },
            ..NcxConfig::default()
        };
        assert!(bad_interval.validate().is_err());
        // A disabled rule ignores the other knobs entirely.
        let disabled = NcxConfig {
            walk_budget: WalkBudget::disabled(),
            ..NcxConfig::default()
        };
        assert!(disabled.validate().is_ok());
    }

    #[test]
    fn parallelism_knob_resolves() {
        assert!(Parallelism::Auto.workers() >= 1);
        assert_eq!(Parallelism::Fixed(3).workers(), 3);
        assert!(Parallelism::sequential().is_sequential());
        let bad_shards = NcxConfig {
            oracle_shards: 0,
            ..NcxConfig::default()
        };
        assert!(bad_shards.validate().is_err());
        let bad_snapshot_shards = NcxConfig {
            store: StoreConfig {
                snapshot_shards: 0,
                ..StoreConfig::default()
            },
            ..NcxConfig::default()
        };
        assert!(bad_snapshot_shards.validate().is_err());
    }

    #[test]
    fn store_config_defaults_and_validation() {
        let c = StoreConfig::default();
        assert_eq!(c.snapshot_shards, 8);
        assert_eq!(c.max_generations, 6);
        let bad_gens = NcxConfig {
            store: StoreConfig {
                max_generations: 0,
                ..StoreConfig::default()
            },
            ..NcxConfig::default()
        };
        match bad_gens.validate().unwrap_err() {
            ConfigError::Invalid { param, .. } => assert_eq!(param, "store.max_generations"),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn query_budget_validation_and_typed_params() {
        // Unlimited by default; a positive limit validates.
        let ok = NcxConfig {
            query_budget: QueryBudget::with_limit(std::time::Duration::from_millis(50)),
            ..NcxConfig::default()
        };
        assert!(ok.validate().is_ok());
        // Zero cadence and zero limits are rejected with the parameter
        // path in the typed error.
        let bad_cadence = NcxConfig {
            query_budget: QueryBudget {
                check_every: 0,
                ..QueryBudget::unlimited()
            },
            ..NcxConfig::default()
        };
        match bad_cadence.validate().unwrap_err() {
            ConfigError::Invalid { param, .. } => assert_eq!(param, "query_budget.check_every"),
            other => panic!("wrong variant: {other:?}"),
        }
        let bad_limit = NcxConfig {
            query_budget: QueryBudget::with_limit(std::time::Duration::ZERO),
            ..NcxConfig::default()
        };
        match bad_limit.validate().unwrap_err() {
            ConfigError::Invalid { param, .. } => assert_eq!(param, "query_budget.time_limit"),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn progressive_config_validation() {
        let d = ProgressiveConfig::default();
        assert_eq!(d.tranche, 8);
        assert!(d.racing);
        assert_eq!(d.max_walks, None);
        for (bad, param) in [
            (
                ProgressiveConfig {
                    tranche: 0,
                    ..ProgressiveConfig::default()
                },
                "progressive.tranche",
            ),
            (
                ProgressiveConfig {
                    z: 0.0,
                    ..ProgressiveConfig::default()
                },
                "progressive.z",
            ),
            (
                ProgressiveConfig {
                    z: f64::NAN,
                    ..ProgressiveConfig::default()
                },
                "progressive.z",
            ),
            (
                ProgressiveConfig {
                    max_walks: Some(0),
                    ..ProgressiveConfig::default()
                },
                "progressive.max_walks",
            ),
        ] {
            let cfg = NcxConfig {
                progressive: bad,
                ..NcxConfig::default()
            };
            match cfg.validate().unwrap_err() {
                ConfigError::Invalid { param: p, .. } => assert_eq!(p, param),
                other => panic!("wrong variant: {other:?}"),
            }
        }
    }

    #[test]
    fn zero_parallelism_rejected_and_clamped() {
        // Regression (`Fixed(0)`): the validator rejects the config …
        let bad = NcxConfig {
            parallelism: Parallelism::Fixed(0),
            ..NcxConfig::default()
        };
        assert!(bad.validate().is_err());
        // … and even a value that slips past validation resolves to one
        // worker, never zero.
        assert_eq!(Parallelism::Fixed(0).workers(), 1);
        assert!(Parallelism::Fixed(0).is_sequential());
    }
}
