//! Snapshot save/open for a built [`NcxIndex`] — the cold-open path.
//!
//! Layout (see `ncx-store` for the container format):
//!
//! * **`concepts-NNN.seg`** ([`SEGMENT_KIND_CONCEPTS`]) — the ⟨c, d⟩
//!   inverted index, **hash-partitioned by concept id** into
//!   [`NcxConfig::snapshot_shards`](crate::config::NcxConfig) shards via
//!   [`ncx_store::shard_of`], so a later PR can load or serve shards
//!   independently. Within a shard, concepts are sorted ascending and
//!   each posting list stores delta-varint doc ids with fixed-width
//!   `f64` score bits (`cdr`, `cdro`, `cdrc`) and the pivot entity —
//!   bit-exact round-trips are a format invariant.
//! * **`doclists.seg`** ([`SEGMENT_KIND_DOCLISTS`]) — per-document
//!   `(concept, cdr)` lists (the drill-down sweep input), delta-encoded
//!   on concept id.
//! * **`entities.seg`** / **`docstore.seg`** — encoded by
//!   [`ncx_index::persist`].
//!
//! The manifest records corpus stats, the build timing/walk counters
//! (so [`diagnostics`](crate::engine::NcExplorer::diagnostics) survive a
//! cold open), and a **knowledge-graph fingerprint** (node/edge/
//! membership counts). Opening under a different KG than the index was
//! built against is refused with [`StoreError::Incompatible`]: concept
//! and entity ids are meaningless outside their graph.
//!
//! Reads decode through [`ShardCursor`], a zero-copy streaming reader
//! over a shard's byte buffer — no per-posting allocation, ready for an
//! `mmap`-backed buffer when a real `memmap2` is available.

use crate::indexer::{ConceptPosting, IndexTiming, NcxIndex};
use crate::relevance::WalkStats;
use ncx_index::persist::{read_docstore, read_entity_index, write_docstore, write_entity_index};
use ncx_index::DocumentStore;
use ncx_kg::{ConceptId, DocId, InstanceId, KnowledgeGraph};
use ncx_store::{shard_of, SegView, Segment, SegmentWriter, Snapshot, SnapshotWriter, StoreError};
use rustc_hash::FxHashMap;
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Duration;

/// Segment kind tag of concept-posting shards.
pub const SEGMENT_KIND_CONCEPTS: u16 = 1;
/// Segment kind tag of the per-document concept-list segment.
pub const SEGMENT_KIND_DOCLISTS: u16 = 2;

/// File name of the per-document concept-list segment.
pub const DOCLISTS_FILE: &str = "doclists.seg";
/// File name of the entity-index segment.
pub const ENTITIES_FILE: &str = "entities.seg";
/// File name of the document-store segment.
pub const DOCSTORE_FILE: &str = "docstore.seg";

// Minimum encoded sizes, used to bound declared counts by the bytes
// actually present: a count that could not possibly fit in the
// remaining payload is corruption, refused *before* any allocation —
// a crafted snapshot must not be able to request absurd capacity.
/// Concept header: u32 id + ≥1-byte posting-count varint.
const MIN_CONCEPT_BYTES: u64 = 5;
/// Posting: ≥1-byte doc delta + 3 × f64 + u32 pivot.
const MIN_POSTING_BYTES: u64 = 29;
/// Doc-list item: ≥1-byte concept delta + f64 cdr.
const MIN_DOCLIST_ITEM_BYTES: u64 = 9;

/// File name of concept-posting shard `i`.
pub fn shard_file(i: u32) -> String {
    format!("concepts-{i:03}.seg")
}

/// Writes a complete snapshot of a built index (plus its corpus) into
/// `dir`. The manifest is written last, so an interrupted save never
/// leaves an openable directory.
pub fn save_snapshot(
    dir: &Path,
    kg: &KnowledgeGraph,
    index: &NcxIndex,
    store: &DocumentStore,
    shards: u32,
) -> Result<(), StoreError> {
    let shards = shards.max(1);
    let mut writer = SnapshotWriter::create(dir, shards)?;

    // ---- concept shards: hash-partitioned, canonical order ----
    let mut by_shard: Vec<Vec<ConceptId>> = vec![Vec::new(); shards as usize];
    for c in index.indexed_concepts() {
        by_shard[shard_of(u64::from(c.raw()), shards) as usize].push(c);
    }
    for (i, concepts) in by_shard.iter_mut().enumerate() {
        concepts.sort_unstable();
        let mut seg = SegmentWriter::new(SEGMENT_KIND_CONCEPTS);
        seg.put_varint(concepts.len() as u64);
        for &c in concepts.iter() {
            let postings = index.postings(c);
            seg.put_u32(c.raw());
            seg.put_varint(postings.len() as u64);
            let mut prev = 0u32;
            for p in postings {
                // Lists are sorted by doc id; deltas are non-negative.
                seg.put_varint(u64::from(p.doc.raw() - prev));
                seg.put_f64(p.cdr);
                seg.put_f64(p.cdro);
                seg.put_f64(p.cdrc);
                seg.put_u32(p.pivot.raw());
                prev = p.doc.raw();
            }
        }
        writer.write_segment(&shard_file(i as u32), seg)?;
    }

    // ---- per-document concept lists ----
    let mut seg = SegmentWriter::new(SEGMENT_KIND_DOCLISTS);
    seg.put_varint(index.num_docs() as u64);
    for i in 0..index.num_docs() {
        let list = index.concepts_of_doc(DocId::from_index(i));
        seg.put_varint(list.len() as u64);
        let mut prev = 0u32;
        for &(c, cdr) in list {
            seg.put_varint(u64::from(c.raw() - prev));
            seg.put_f64(cdr);
            prev = c.raw();
        }
    }
    writer.write_segment(DOCLISTS_FILE, seg)?;

    // ---- entity index and document store ----
    writer.write_segment(ENTITIES_FILE, write_entity_index(&index.entity_index))?;
    writer.write_segment(DOCSTORE_FILE, write_docstore(store))?;

    // ---- stats: corpus, KG fingerprint, diagnostics ----
    writer.set_stat("num_docs", index.num_docs() as u64);
    writer.set_stat("num_postings", index.num_postings() as u64);
    writer.set_stat("num_indexed_concepts", index.num_indexed_concepts() as u64);
    writer.set_stat("num_entities", index.entity_index.num_entities() as u64);
    writer.set_stat("kg_concepts", kg.num_concepts() as u64);
    writer.set_stat("kg_instances", kg.num_instances() as u64);
    writer.set_stat("kg_memberships", kg.num_memberships() as u64);
    writer.set_stat("walks", index.walk_stats.walks);
    writer.set_stat("walk_hits", index.walk_stats.hits);
    writer.set_stat("walk_dead_ends", index.walk_stats.dead_ends);
    writer.set_stat("walk_early_stops", index.walk_stats.early_stops);
    writer.set_stat(
        "timing_linking_nanos",
        index.timing.entity_linking.as_nanos() as u64,
    );
    writer.set_stat(
        "timing_scoring_nanos",
        index.timing.relevance_scoring.as_nanos() as u64,
    );
    writer.set_stat(
        "timing_wall_nanos",
        index.timing.total_wall.as_nanos() as u64,
    );
    writer.finish()?;
    Ok(())
}

/// Opens a snapshot directory and reassembles the index and corpus.
/// `kg` must be the graph the snapshot was built against (checked via
/// the manifest fingerprint).
pub fn open_snapshot(
    dir: &Path,
    kg: &KnowledgeGraph,
) -> Result<(NcxIndex, DocumentStore), StoreError> {
    LoadedSnapshot::load(dir, kg)?.decode()
}

/// Opens one snapshot directory as `replicas` independent
/// (index, corpus) pairs for concurrent serving: the manifest is
/// verified and every segment is read and checksummed **once**, then
/// decoded per replica from the shared in-memory bytes — disk I/O does
/// not scale with the replica count. Each decode is independent, so the
/// resulting indexes share no mutable state.
pub fn open_replicas(
    dir: &Path,
    kg: &KnowledgeGraph,
    replicas: usize,
) -> Result<Vec<(NcxIndex, DocumentStore)>, StoreError> {
    let loaded = LoadedSnapshot::load(dir, kg)?;
    (0..replicas.max(1)).map(|_| loaded.decode()).collect()
}

/// A snapshot's segments held in memory, verified and ready to decode.
///
/// Splits the cold open into its two costs: [`load`](Self::load) (disk
/// I/O, checksums, manifest gates — paid once) and
/// [`decode`](Self::decode) (materialising an index — paid per replica).
pub struct LoadedSnapshot {
    segments: BTreeMap<String, Segment>,
    shards: u32,
    num_docs: usize,
    num_postings: Option<u64>,
    timing: IndexTiming,
    walk_stats: WalkStats,
}

impl LoadedSnapshot {
    /// Opens `dir`, runs the manifest gates (format version, KG
    /// fingerprint), and reads every segment into memory with full
    /// verification. No decoding happens yet.
    pub fn load(dir: &Path, kg: &KnowledgeGraph) -> Result<Self, StoreError> {
        let snapshot = Snapshot::open(dir)?;
        let manifest = snapshot.manifest();

        // KG fingerprint gate, before any segment is read.
        let fingerprint = [
            ("kg_concepts", kg.num_concepts() as u64),
            ("kg_instances", kg.num_instances() as u64),
            ("kg_memberships", kg.num_memberships() as u64),
        ];
        for (key, actual) in fingerprint {
            match manifest.stat(key) {
                Some(recorded) if recorded == actual => {}
                Some(recorded) => {
                    return Err(StoreError::Incompatible {
                        detail: format!(
                            "snapshot was built against a different knowledge graph \
                             ({key}: snapshot {recorded}, runtime {actual})"
                        ),
                    });
                }
                None => {
                    return Err(StoreError::corrupt(
                        ncx_store::MANIFEST_NAME,
                        format!("missing stat {key}"),
                    ));
                }
            }
        }

        let num_docs = manifest
            .stat("num_docs")
            .ok_or_else(|| StoreError::corrupt(ncx_store::MANIFEST_NAME, "missing stat num_docs"))?
            as usize;

        let timing = IndexTiming {
            entity_linking: stat_duration(manifest, "timing_linking_nanos"),
            relevance_scoring: stat_duration(manifest, "timing_scoring_nanos"),
            total_wall: stat_duration(manifest, "timing_wall_nanos"),
            docs: num_docs,
        };
        let walk_stats = WalkStats {
            walks: manifest.stat("walks").unwrap_or(0),
            hits: manifest.stat("walk_hits").unwrap_or(0),
            dead_ends: manifest.stat("walk_dead_ends").unwrap_or(0),
            // Absent in pre-walk-engine snapshots; 0 is the faithful default.
            early_stops: manifest.stat("walk_early_stops").unwrap_or(0),
        };
        Ok(Self {
            segments: snapshot.read_all_segments()?,
            shards: manifest.shards,
            num_docs,
            num_postings: manifest.stat("num_postings"),
            timing,
            walk_stats,
        })
    }

    /// Documents in the snapshot's corpus.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    fn segment(&self, name: &str) -> Result<&Segment, StoreError> {
        self.segments
            .get(name)
            .ok_or_else(|| StoreError::MissingFile { file: name.into() })
    }

    /// Decodes one independent (index, corpus) pair from the loaded
    /// bytes. Callable any number of times; each call allocates fresh
    /// structures.
    pub fn decode(&self) -> Result<(NcxIndex, DocumentStore), StoreError> {
        // ---- concept shards ----
        let mut concept_postings: FxHashMap<ConceptId, Vec<ConceptPosting>> = FxHashMap::default();
        let mut total_postings = 0u64;
        for i in 0..self.shards {
            let segment = self.segment(&shard_file(i))?;
            let mut cursor = ShardCursor::new(segment)?;
            while let Some((concept, count)) = cursor.next_concept()? {
                if shard_of(u64::from(concept.raw()), self.shards) != i {
                    return Err(StoreError::corrupt(
                        segment.name(),
                        format!("concept {} does not belong to shard {i}", concept.raw()),
                    ));
                }
                let mut list = Vec::with_capacity(count);
                while let Some(posting) = cursor.next_posting()? {
                    if posting.doc.index() >= self.num_docs {
                        return Err(StoreError::corrupt(
                            segment.name(),
                            format!("doc id {} out of range", posting.doc.raw()),
                        ));
                    }
                    list.push(posting);
                }
                total_postings += list.len() as u64;
                if concept_postings.insert(concept, list).is_some() {
                    return Err(StoreError::corrupt(
                        segment.name(),
                        format!("concept {} appears twice", concept.raw()),
                    ));
                }
            }
            cursor.finish()?;
        }
        if Some(total_postings) != self.num_postings {
            return Err(StoreError::corrupt(
                ncx_store::MANIFEST_NAME,
                format!(
                    "shards hold {total_postings} postings, manifest says {:?}",
                    self.num_postings
                ),
            ));
        }

        // ---- per-document concept lists ----
        let doc_concepts = read_doclists(self.segment(DOCLISTS_FILE)?, self.num_docs)?;

        // ---- entity index and document store ----
        let entity_index = read_entity_index(self.segment(ENTITIES_FILE)?)?;
        let store = read_docstore(self.segment(DOCSTORE_FILE)?)?;

        // Cross-segment consistency: every view must agree on corpus size.
        for (what, n) in [
            ("doclists.seg documents", doc_concepts.len()),
            ("entities.seg documents", entity_index.num_docs()),
            ("docstore.seg documents", store.len()),
        ] {
            if n != self.num_docs {
                return Err(StoreError::Incompatible {
                    detail: format!("{what}: {n}, manifest num_docs: {}", self.num_docs),
                });
            }
        }

        let index = NcxIndex::from_parts(
            entity_index,
            concept_postings,
            doc_concepts,
            self.timing,
            self.walk_stats,
        );
        Ok((index, store))
    }
}

fn stat_duration(manifest: &ncx_store::Manifest, key: &str) -> Duration {
    Duration::from_nanos(manifest.stat(key).unwrap_or(0))
}

fn read_doclists(
    segment: &Segment,
    num_docs: usize,
) -> Result<Vec<Vec<(ConceptId, f64)>>, StoreError> {
    if segment.kind() != SEGMENT_KIND_DOCLISTS {
        return Err(StoreError::corrupt(
            segment.name(),
            format!("expected doclists kind, found {}", segment.kind()),
        ));
    }
    let mut v = segment.view();
    // Each document contributes at least its 1-byte count varint.
    let n = v.get_count(v.remaining() as u64)?;
    if n != num_docs {
        // Caught again by the cross-segment check, but failing here keeps
        // the error anchored to the offending file.
        return Err(StoreError::corrupt(
            segment.name(),
            format!("segment holds {n} documents, manifest says {num_docs}"),
        ));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let m = v.get_count(v.remaining() as u64 / MIN_DOCLIST_ITEM_BYTES)?;
        let mut list = Vec::with_capacity(m);
        let mut prev = 0u32;
        for j in 0..m {
            let delta = v.get_varint()?;
            let raw = u32::try_from(u64::from(prev) + delta).map_err(|_| {
                StoreError::corrupt(segment.name(), "concept id delta overflows u32")
            })?;
            if j > 0 && delta == 0 {
                return Err(StoreError::corrupt(
                    segment.name(),
                    "duplicate concept in a document list",
                ));
            }
            let cdr = v.get_f64()?;
            list.push((ConceptId::new(raw), cdr));
            prev = raw;
        }
        out.push(list);
    }
    v.finish()?;
    Ok(out)
}

/// Zero-copy streaming reader over one concept-posting shard: decodes
/// `(concept, postings…)` straight out of the segment's byte slice with
/// no per-posting allocation. Skipping a concept's remaining postings is
/// handled transparently by the next [`next_concept`](Self::next_concept)
/// call, so partial consumers (e.g. a single-concept lookup) stay
/// correct.
pub struct ShardCursor<'a> {
    view: SegView<'a>,
    file: String,
    concepts_left: usize,
    postings_left: usize,
    prev_doc: u32,
    first_in_list: bool,
}

impl<'a> ShardCursor<'a> {
    /// Starts decoding a shard segment.
    pub fn new(segment: &'a Segment) -> Result<Self, StoreError> {
        if segment.kind() != SEGMENT_KIND_CONCEPTS {
            return Err(StoreError::corrupt(
                segment.name(),
                format!("expected concept-shard kind, found {}", segment.kind()),
            ));
        }
        let mut view = segment.view();
        let concepts_left = view.get_count(view.remaining() as u64 / MIN_CONCEPT_BYTES)?;
        Ok(Self {
            view,
            file: segment.name().to_string(),
            concepts_left,
            postings_left: 0,
            prev_doc: 0,
            first_in_list: true,
        })
    }

    /// Advances to the next concept, returning its id and posting count,
    /// or `None` at the end of the shard.
    pub fn next_concept(&mut self) -> Result<Option<(ConceptId, usize)>, StoreError> {
        while self.postings_left > 0 {
            self.next_posting()?;
        }
        if self.concepts_left == 0 {
            return Ok(None);
        }
        self.concepts_left -= 1;
        let concept = ConceptId::new(self.view.get_u32()?);
        self.postings_left = self
            .view
            .get_count(self.view.remaining() as u64 / MIN_POSTING_BYTES)?;
        self.prev_doc = 0;
        self.first_in_list = true;
        Ok(Some((concept, self.postings_left)))
    }

    /// Decodes the next posting of the current concept, or `None` when
    /// its list is exhausted.
    pub fn next_posting(&mut self) -> Result<Option<ConceptPosting>, StoreError> {
        if self.postings_left == 0 {
            return Ok(None);
        }
        self.postings_left -= 1;
        let delta = self.view.get_varint()?;
        let doc = u32::try_from(u64::from(self.prev_doc) + delta)
            .map_err(|_| StoreError::corrupt(&self.file, "doc id delta overflows u32"))?;
        if delta == 0 && !self.first_in_list {
            return Err(StoreError::corrupt(
                &self.file,
                "duplicate doc id in a posting list",
            ));
        }
        self.first_in_list = false;
        self.prev_doc = doc;
        let cdr = self.view.get_f64()?;
        let cdro = self.view.get_f64()?;
        let cdrc = self.view.get_f64()?;
        let pivot = InstanceId::new(self.view.get_u32()?);
        Ok(Some(ConceptPosting {
            doc: DocId::new(doc),
            cdr,
            cdro,
            cdrc,
            pivot,
        }))
    }

    /// Asserts the shard is fully consumed with no trailing bytes.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.concepts_left != 0 || self.postings_left != 0 {
            return Err(StoreError::corrupt(
                &self.file,
                "shard cursor finished before the shard ended",
            ));
        }
        self.view.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn posting(doc: u32, cdr: f64) -> ConceptPosting {
        ConceptPosting {
            doc: DocId::new(doc),
            cdr,
            cdro: cdr * 0.5,
            cdrc: 2.0,
            pivot: InstanceId::new(doc + 100),
        }
    }

    fn shard_with(concepts: &[(u32, Vec<ConceptPosting>)]) -> Segment {
        let mut seg = SegmentWriter::new(SEGMENT_KIND_CONCEPTS);
        seg.put_varint(concepts.len() as u64);
        for (c, postings) in concepts {
            seg.put_u32(*c);
            seg.put_varint(postings.len() as u64);
            let mut prev = 0u32;
            for p in postings {
                seg.put_varint(u64::from(p.doc.raw() - prev));
                seg.put_f64(p.cdr);
                seg.put_f64(p.cdro);
                seg.put_f64(p.cdrc);
                seg.put_u32(p.pivot.raw());
                prev = p.doc.raw();
            }
        }
        Segment::from_bytes("concepts-000.seg", seg.into_bytes()).unwrap()
    }

    #[test]
    fn shard_cursor_streams_exact_postings() {
        let lists = vec![
            (
                3u32,
                vec![posting(0, 0.25), posting(5, 0.5), posting(6, 1.0)],
            ),
            (9u32, vec![posting(2, 0.125)]),
        ];
        let segment = shard_with(&lists);
        let mut cursor = ShardCursor::new(&segment).unwrap();
        for (c, expected) in &lists {
            let (concept, count) = cursor.next_concept().unwrap().unwrap();
            assert_eq!(concept.raw(), *c);
            assert_eq!(count, expected.len());
            for want in expected {
                let got = cursor.next_posting().unwrap().unwrap();
                assert_eq!(got, *want);
            }
            assert!(cursor.next_posting().unwrap().is_none());
        }
        assert!(cursor.next_concept().unwrap().is_none());
        cursor.finish().unwrap();
    }

    #[test]
    fn shard_cursor_skips_unconsumed_postings() {
        let lists = vec![
            (
                1u32,
                vec![posting(0, 1.0), posting(1, 2.0), posting(2, 3.0)],
            ),
            (2u32, vec![posting(7, 4.0)]),
        ];
        let segment = shard_with(&lists);
        let mut cursor = ShardCursor::new(&segment).unwrap();
        cursor.next_concept().unwrap().unwrap();
        // Read only one of three postings, then jump to the next concept.
        cursor.next_posting().unwrap().unwrap();
        let (concept, _) = cursor.next_concept().unwrap().unwrap();
        assert_eq!(concept.raw(), 2);
        assert_eq!(cursor.next_posting().unwrap().unwrap().doc.raw(), 7);
        assert!(cursor.next_concept().unwrap().is_none());
        cursor.finish().unwrap();
    }

    #[test]
    fn duplicate_doc_ids_are_corrupt() {
        // Two postings with delta 0 (same doc) must be refused.
        let mut seg = SegmentWriter::new(SEGMENT_KIND_CONCEPTS);
        seg.put_varint(1);
        seg.put_u32(1);
        seg.put_varint(2);
        for _ in 0..2 {
            seg.put_varint(3); // first: doc 3; second: delta 3 → doc 6 (ok)
            seg.put_f64(1.0);
            seg.put_f64(1.0);
            seg.put_f64(1.0);
            seg.put_u32(0);
        }
        let segment = Segment::from_bytes("concepts-000.seg", seg.into_bytes()).unwrap();
        let mut cursor = ShardCursor::new(&segment).unwrap();
        cursor.next_concept().unwrap();
        assert!(cursor.next_posting().is_ok());
        assert!(cursor.next_posting().is_ok(), "distinct docs decode fine");

        let mut seg = SegmentWriter::new(SEGMENT_KIND_CONCEPTS);
        seg.put_varint(1);
        seg.put_u32(1);
        seg.put_varint(2);
        for delta in [5u64, 0] {
            seg.put_varint(delta);
            seg.put_f64(1.0);
            seg.put_f64(1.0);
            seg.put_f64(1.0);
            seg.put_u32(0);
        }
        let segment = Segment::from_bytes("concepts-000.seg", seg.into_bytes()).unwrap();
        let mut cursor = ShardCursor::new(&segment).unwrap();
        cursor.next_concept().unwrap();
        cursor.next_posting().unwrap();
        assert!(matches!(
            cursor.next_posting(),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn wrong_kind_is_refused() {
        let seg = SegmentWriter::new(SEGMENT_KIND_DOCLISTS);
        let segment = Segment::from_bytes("doclists.seg", seg.into_bytes()).unwrap();
        assert!(ShardCursor::new(&segment).is_err());
    }

    #[test]
    fn absurd_declared_counts_are_corrupt_not_allocations() {
        // A crafted shard declaring trillions of concepts (or postings)
        // must be refused by the bytes-available bound before any
        // capacity is reserved.
        let mut seg = SegmentWriter::new(SEGMENT_KIND_CONCEPTS);
        seg.put_varint(1 << 40);
        let segment = Segment::from_bytes("concepts-000.seg", seg.into_bytes()).unwrap();
        assert!(matches!(
            ShardCursor::new(&segment),
            Err(StoreError::Corrupt { .. })
        ));

        let mut seg = SegmentWriter::new(SEGMENT_KIND_CONCEPTS);
        seg.put_varint(1); // one concept…
        seg.put_u32(7);
        seg.put_varint(1 << 40); // …claiming 2^40 postings
        let segment = Segment::from_bytes("concepts-000.seg", seg.into_bytes()).unwrap();
        let mut cursor = ShardCursor::new(&segment).unwrap();
        assert!(matches!(
            cursor.next_concept(),
            Err(StoreError::Corrupt { .. })
        ));

        let mut seg = SegmentWriter::new(SEGMENT_KIND_DOCLISTS);
        seg.put_varint(1 << 40);
        let segment = Segment::from_bytes("doclists.seg", seg.into_bytes()).unwrap();
        assert!(matches!(
            read_doclists(&segment, 1 << 40),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
