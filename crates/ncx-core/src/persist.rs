//! Snapshot save/open for a built [`NcxIndex`] — the cold-open path —
//! plus the **generation-layered** incremental protocols: delta flush,
//! compaction, and lazy shard decoding.
//!
//! Layout (see `ncx-store` for the container format):
//!
//! * **`concepts-NNN.seg`** ([`SEGMENT_KIND_CONCEPTS`]) — the ⟨c, d⟩
//!   inverted index, **hash-partitioned by concept id** into
//!   [`StoreConfig::snapshot_shards`](crate::config::StoreConfig) shards
//!   via [`ncx_store::shard_of`], so the serving tier can load or decode
//!   shards independently. Within a shard, concepts are sorted strictly
//!   ascending and each posting list stores delta-varint doc ids with
//!   fixed-width `f64` score bits (`cdr`, `cdro`, `cdrc`) and the pivot
//!   entity — bit-exact round-trips are a format invariant.
//! * **`doclists.seg`** ([`SEGMENT_KIND_DOCLISTS`]) — per-document
//!   `(concept, cdr)` lists (the drill-down sweep input), delta-encoded
//!   on concept id.
//! * **`entities.seg`** / **`docstore.seg`** — encoded by
//!   [`ncx_index::persist`].
//!
//! ## Generations
//!
//! A snapshot is a **stack of generations**: generation 0 (the base,
//! using the legacy file names above) plus zero or more append-only
//! deltas written by [`flush_delta`], whose files carry a `-gGGG`
//! infix (`concepts-g002-001.seg`, `doclists-g002.seg`, …). Generation
//! `g` holds exactly the documents `[start_g, start_g + docs_g)` where
//! `start_g` is the sum of the earlier generations' doc counts, so
//! replaying generations in ascending order reconstructs the monolithic
//! index **bit-for-bit** — doc ids only ever grow, which means layered
//! posting lists concatenate already sorted. [`compact_snapshot`] folds
//! the stack back into a single fresh base. Which generations are live
//! is defined **solely by the manifest**: stray files from torn writes
//! are never read (see `ncx_store::Snapshot::stray_files`).
//!
//! The manifest records corpus stats, the build timing/walk counters
//! (so [`diagnostics`](crate::engine::NcExplorer::diagnostics) survive a
//! cold open), and a **knowledge-graph fingerprint** (node/edge/
//! membership counts). Opening under a different KG than the index was
//! built against is refused with [`StoreError::Incompatible`]: concept
//! and entity ids are meaningless outside their graph.
//!
//! Reads decode through [`ShardCursor`], a zero-copy streaming reader
//! over a shard's byte buffer — no per-posting allocation, ready for an
//! `mmap`-backed buffer when a real `memmap2` is available.
//! [`open_snapshot_lazy`] defers even that: concept shards stay as
//! verified bytes and decode on first touch (see [`LazyConceptShards`]).

use crate::indexer::{ConceptPosting, IndexTiming, NcxIndex};
use crate::relevance::WalkStats;
use ncx_index::persist::{
    read_docstore_into, read_entity_index_into, write_docstore_from, write_entity_index_from,
};
use ncx_index::{DocumentStore, EntityIndex};
use ncx_kg::{ConceptId, DocId, InstanceId, KnowledgeGraph};
use ncx_store::{
    shard_of, GenerationWriter, SegView, Segment, SegmentWriter, Snapshot, SnapshotWriter,
    StoreError,
};
use rustc_hash::FxHashMap;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::OnceLock;
use std::time::Duration;

/// Segment kind tag of concept-posting shards.
pub const SEGMENT_KIND_CONCEPTS: u16 = 1;
/// Segment kind tag of the per-document concept-list segment.
pub const SEGMENT_KIND_DOCLISTS: u16 = 2;

/// File name of the base per-document concept-list segment.
pub const DOCLISTS_FILE: &str = "doclists.seg";
/// File name of the base entity-index segment.
pub const ENTITIES_FILE: &str = "entities.seg";
/// File name of the base document-store segment.
pub const DOCSTORE_FILE: &str = "docstore.seg";

// Minimum encoded sizes, used to bound declared counts by the bytes
// actually present: a count that could not possibly fit in the
// remaining payload is corruption, refused *before* any allocation —
// a crafted snapshot must not be able to request absurd capacity.
/// Concept header: u32 id + ≥1-byte posting-count varint.
const MIN_CONCEPT_BYTES: u64 = 5;
/// Posting: ≥1-byte doc delta + 3 × f64 + u32 pivot.
const MIN_POSTING_BYTES: u64 = 29;
/// Doc-list item: ≥1-byte concept delta + f64 cdr.
const MIN_DOCLIST_ITEM_BYTES: u64 = 9;

/// File name of concept-posting shard `shard` of generation `gen`.
/// Generation 0 keeps the legacy (pre-layering) names, so v1 snapshots
/// open as a one-generation stack without renames.
pub fn shard_file(gen: u32, shard: u32) -> String {
    if gen == 0 {
        format!("concepts-{shard:03}.seg")
    } else {
        format!("concepts-g{gen:03}-{shard:03}.seg")
    }
}

/// File name of the per-document concept-list segment of `gen`.
pub fn doclists_file(gen: u32) -> String {
    if gen == 0 {
        DOCLISTS_FILE.to_string()
    } else {
        format!("doclists-g{gen:03}.seg")
    }
}

/// File name of the entity-index segment of `gen`.
pub fn entities_file(gen: u32) -> String {
    if gen == 0 {
        ENTITIES_FILE.to_string()
    } else {
        format!("entities-g{gen:03}.seg")
    }
}

/// File name of the document-store segment of `gen`.
pub fn docstore_file(gen: u32) -> String {
    if gen == 0 {
        DOCSTORE_FILE.to_string()
    } else {
        format!("docstore-g{gen:03}.seg")
    }
}

/// The two snapshot writers expose identical segment/stat recording;
/// this seam lets the monolithic save, the delta flush, and compaction
/// share one corpus encoder.
trait SegSink {
    fn write_segment(&mut self, name: &str, seg: SegmentWriter) -> Result<(), StoreError>;
    fn set_stat(&mut self, name: &'static str, value: u64);
}

impl SegSink for SnapshotWriter {
    fn write_segment(&mut self, name: &str, seg: SegmentWriter) -> Result<(), StoreError> {
        SnapshotWriter::write_segment(self, name, seg)
    }
    fn set_stat(&mut self, name: &'static str, value: u64) {
        SnapshotWriter::set_stat(self, name, value);
    }
}

impl SegSink for GenerationWriter {
    fn write_segment(&mut self, name: &str, seg: SegmentWriter) -> Result<(), StoreError> {
        GenerationWriter::write_segment(self, name, seg)
    }
    fn set_stat(&mut self, name: &'static str, value: u64) {
        GenerationWriter::set_stat(self, name, value);
    }
}

/// Encodes the documents `[first_doc, num_docs)` of `index`/`store` as
/// one generation's segment set under `gen`-numbered names, and records
/// the **whole-corpus** stats (stats always describe the full layered
/// snapshot, not one layer). Returns the number of postings written.
fn write_corpus<W: SegSink>(
    w: &mut W,
    gen: u32,
    shards: u32,
    kg: &KnowledgeGraph,
    index: &NcxIndex,
    store: &DocumentStore,
    first_doc: usize,
) -> Result<u64, StoreError> {
    // ---- concept shards: hash-partitioned, canonical order ----
    let mut by_shard: Vec<Vec<ConceptId>> = vec![Vec::new(); shards as usize];
    for c in index.indexed_concepts() {
        by_shard[shard_of(u64::from(c.raw()), shards) as usize].push(c);
    }
    let mut written = 0u64;
    for (i, concepts) in by_shard.iter_mut().enumerate() {
        concepts.sort_unstable();
        let mut seg = SegmentWriter::new(SEGMENT_KIND_CONCEPTS);
        // The suffix may leave some concepts empty; count first so the
        // header matches (every shard file exists, even when empty —
        // the reader derives the file set from the manifest alone).
        let mut sliced: Vec<(ConceptId, &[ConceptPosting])> = Vec::new();
        for &c in concepts.iter() {
            let postings = index.postings(c);
            let split = postings.partition_point(|p| p.doc.index() < first_doc);
            if split < postings.len() {
                sliced.push((c, &postings[split..]));
            }
        }
        seg.put_varint(sliced.len() as u64);
        for (c, postings) in sliced {
            seg.put_u32(c.raw());
            seg.put_varint(postings.len() as u64);
            written += postings.len() as u64;
            let mut prev = 0u32;
            for p in postings {
                // Lists are sorted by doc id; deltas are non-negative
                // (the first is the absolute doc id).
                seg.put_varint(u64::from(p.doc.raw() - prev));
                seg.put_f64(p.cdr);
                seg.put_f64(p.cdro);
                seg.put_f64(p.cdrc);
                seg.put_u32(p.pivot.raw());
                prev = p.doc.raw();
            }
        }
        w.write_segment(&shard_file(gen, i as u32), seg)?;
    }

    // ---- per-document concept lists ----
    let n = index.num_docs();
    let mut seg = SegmentWriter::new(SEGMENT_KIND_DOCLISTS);
    seg.put_varint((n - first_doc) as u64);
    for i in first_doc..n {
        let list = index.concepts_of_doc(DocId::from_index(i));
        seg.put_varint(list.len() as u64);
        let mut prev = 0u32;
        for &(c, cdr) in list {
            seg.put_varint(u64::from(c.raw() - prev));
            seg.put_f64(cdr);
            prev = c.raw();
        }
    }
    w.write_segment(&doclists_file(gen), seg)?;

    // ---- entity index and document store ----
    w.write_segment(
        &entities_file(gen),
        write_entity_index_from(&index.entity_index, first_doc),
    )?;
    w.write_segment(&docstore_file(gen), write_docstore_from(store, first_doc))?;

    // ---- stats: corpus, KG fingerprint, diagnostics ----
    w.set_stat("num_docs", n as u64);
    w.set_stat("num_postings", index.num_postings() as u64);
    w.set_stat("num_indexed_concepts", index.num_indexed_concepts() as u64);
    w.set_stat("num_entities", index.entity_index.num_entities() as u64);
    w.set_stat("kg_concepts", kg.num_concepts() as u64);
    w.set_stat("kg_instances", kg.num_instances() as u64);
    w.set_stat("kg_memberships", kg.num_memberships() as u64);
    w.set_stat("walks", index.walk_stats.walks);
    w.set_stat("walk_hits", index.walk_stats.hits);
    w.set_stat("walk_dead_ends", index.walk_stats.dead_ends);
    w.set_stat("walk_early_stops", index.walk_stats.early_stops);
    w.set_stat("walk_estimates", index.walk_stats.estimates);
    w.set_stat(
        "timing_linking_nanos",
        index.timing.entity_linking.as_nanos() as u64,
    );
    w.set_stat(
        "timing_scoring_nanos",
        index.timing.relevance_scoring.as_nanos() as u64,
    );
    w.set_stat(
        "timing_wall_nanos",
        index.timing.total_wall.as_nanos() as u64,
    );
    Ok(written)
}

/// Writes a complete snapshot of a built index (plus its corpus) into
/// `dir` as a single base generation. The manifest is written last, so
/// an interrupted save never leaves an openable directory.
pub fn save_snapshot(
    dir: &Path,
    kg: &KnowledgeGraph,
    index: &NcxIndex,
    store: &DocumentStore,
    shards: u32,
) -> Result<(), StoreError> {
    let shards = shards.max(1);
    let mut writer = SnapshotWriter::create(dir, shards)?;
    writer.set_docs(index.num_docs() as u64);
    write_corpus(&mut writer, 0, shards, kg, index, store, 0)?;
    writer.finish()?;
    Ok(())
}

/// What a delta flush did; see [`flush_delta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushOutcome {
    /// Documents the new generation holds (0 for a no-op flush).
    pub flushed_docs: u64,
    /// The generation number written, or `None` when nothing had to be
    /// flushed (the snapshot already held every document).
    pub generation: Option<u32>,
    /// Live generations after the flush.
    pub generations: u32,
}

/// Appends everything ingested since the snapshot in `dir` was last
/// written as one new **delta generation** — only the new documents'
/// postings, doc lists, entity bags and articles are encoded; no base
/// file is rewritten. The index must be a strict superset of the
/// snapshot (same KG, same document prefix); flushing a diverged or
/// shorter corpus is refused with [`StoreError::Incompatible`].
///
/// The operation is crash-atomic: segments land under fresh
/// generation-numbered names, and the updated manifest is committed by
/// a single atomic rename — an interrupted flush leaves the previous
/// snapshot governing (see `ncx_store::snapshot` for the protocol).
pub fn flush_delta(
    dir: &Path,
    kg: &KnowledgeGraph,
    index: &NcxIndex,
    store: &DocumentStore,
) -> Result<FlushOutcome, StoreError> {
    let snapshot = Snapshot::open(dir)?;
    let manifest = snapshot.manifest();
    check_kg_fingerprint(manifest, kg)?;
    let on_disk = require_stat(manifest, "num_docs")? as usize;
    let base_postings = manifest.stat("num_postings");
    let n = index.num_docs();
    if store.len() != n {
        return Err(StoreError::Incompatible {
            detail: format!(
                "index holds {n} documents but the store holds {}; refusing to flush",
                store.len()
            ),
        });
    }
    if n < on_disk {
        return Err(StoreError::Incompatible {
            detail: format!(
                "snapshot holds {on_disk} documents, engine only {n}; refusing to flush backwards"
            ),
        });
    }
    if n == on_disk {
        return Ok(FlushOutcome {
            flushed_docs: 0,
            generation: None,
            generations: manifest.generations.len() as u32,
        });
    }
    let mut gw = snapshot.append_generation((n - on_disk) as u64)?;
    let gen = gw.gen();
    let shards = gw.shards();
    let delta_postings = write_corpus(&mut gw, gen, shards, kg, index, store, on_disk)?;
    // Prefix sanity: the snapshot's postings plus the delta must add up
    // to the live index. A mismatch means the engine's history is not
    // the snapshot's history (e.g. flushing into an unrelated directory
    // that happens to share the KG) — committing would corrupt it.
    if let Some(base) = base_postings {
        if base + delta_postings != index.num_postings() as u64 {
            return Err(StoreError::Incompatible {
                detail: format!(
                    "snapshot holds {base} postings and the delta adds {delta_postings}, \
                     but the engine holds {}; the index prefix diverged from the snapshot",
                    index.num_postings()
                ),
            });
        }
    }
    let manifest = gw.finish()?;
    Ok(FlushOutcome {
        flushed_docs: (n - on_disk) as u64,
        generation: Some(gen),
        generations: manifest.generations.len() as u32,
    })
}

/// What a compaction did; see [`compact_snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactOutcome {
    /// Whether a compaction actually ran (a single-generation snapshot
    /// is already compact — nothing to do).
    pub compacted: bool,
    /// The fresh base generation's number, when one was written.
    pub generation: Option<u32>,
    /// Generations that were live before the operation.
    pub generations_before: u32,
}

/// What [`NcExplorer::checkpoint`](crate::engine::NcExplorer::checkpoint)
/// did: a delta flush, possibly followed by a compaction when the stack
/// exceeded [`StoreConfig::max_generations`](crate::config::StoreConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointOutcome {
    /// Documents the flush wrote (0 when the snapshot was current).
    pub flushed_docs: u64,
    /// Generation number the flush (or bootstrap save) produced.
    pub generation: Option<u32>,
    /// Whether the checkpoint folded the stack back into one base.
    pub compacted: bool,
    /// Live generations after the checkpoint.
    pub generations: u32,
}

/// Folds a layered snapshot back into a **single base generation**:
/// replays the stack into memory, writes the merged corpus under a
/// fresh generation number, atomically commits the new manifest, and
/// only then deletes the superseded generation files (plus any strays).
/// A snapshot that is already a single generation is left untouched.
///
/// The replay decodes through the same layered open as
/// [`open_snapshot`], so the compacted snapshot is bit-for-bit
/// equivalent to the stack it replaces.
pub fn compact_snapshot(dir: &Path, kg: &KnowledgeGraph) -> Result<CompactOutcome, StoreError> {
    let snapshot = Snapshot::open(dir)?;
    let generations_before = snapshot.manifest().generations.len() as u32;
    if generations_before <= 1 {
        return Ok(CompactOutcome {
            compacted: false,
            generation: None,
            generations_before,
        });
    }
    let loaded = LoadedSnapshot::from_snapshot(&snapshot, kg)?;
    let (index, store) = loaded.decode()?;
    let mut cw = snapshot.begin_compaction(index.num_docs() as u64)?;
    let gen = cw.gen();
    let shards = cw.shards();
    write_corpus(&mut cw, gen, shards, kg, &index, &store, 0)?;
    cw.finish()?;
    Ok(CompactOutcome {
        compacted: true,
        generation: Some(gen),
        generations_before,
    })
}

/// Opens a snapshot directory and reassembles the index and corpus,
/// replaying the generation stack in ascending order. `kg` must be the
/// graph the snapshot was built against (checked via the manifest
/// fingerprint).
pub fn open_snapshot(
    dir: &Path,
    kg: &KnowledgeGraph,
) -> Result<(NcxIndex, DocumentStore), StoreError> {
    LoadedSnapshot::load(dir, kg)?.decode()
}

/// Opens a snapshot like [`open_snapshot`], but defers concept-shard
/// decoding: every file is still read and checksummed up front (and the
/// doc lists, entity index and article store are decoded eagerly — the
/// engine needs them for any query), while the posting shards stay as
/// verified bytes that materialise on first touch. Cuts the
/// time-to-first-query for workloads that only ever touch a few
/// concepts; see [`LazyConceptShards`] for the contract.
pub fn open_snapshot_lazy(
    dir: &Path,
    kg: &KnowledgeGraph,
) -> Result<(NcxIndex, DocumentStore), StoreError> {
    LoadedSnapshot::load(dir, kg)?.decode_lazy()
}

/// Opens one snapshot directory as `replicas` independent
/// (index, corpus) pairs for concurrent serving: the manifest is
/// verified and every segment is read and checksummed **once**, then
/// decoded per replica from the shared in-memory bytes — disk I/O does
/// not scale with the replica count. Each decode is independent, so the
/// resulting indexes share no mutable state.
pub fn open_replicas(
    dir: &Path,
    kg: &KnowledgeGraph,
    replicas: usize,
) -> Result<Vec<(NcxIndex, DocumentStore)>, StoreError> {
    let loaded = LoadedSnapshot::load(dir, kg)?;
    (0..replicas.max(1)).map(|_| loaded.decode()).collect()
}

/// One live generation's place in the corpus: it holds exactly the
/// documents `[start, start + docs)`.
#[derive(Debug, Clone, Copy)]
struct GenLayer {
    gen: u32,
    start: usize,
    docs: usize,
}

/// Everything [`LoadedSnapshot::decode_docs`] materialises besides the
/// concept shards: per-doc concept lists, entity index, article store.
type DecodedDocs = (Vec<Vec<(ConceptId, f64)>>, EntityIndex, DocumentStore);

/// A snapshot's segments held in memory, verified and ready to decode.
///
/// Splits the cold open into its two costs: [`load`](Self::load) (disk
/// I/O, checksums, manifest gates — paid once) and
/// [`decode`](Self::decode) (materialising an index — paid per replica).
pub struct LoadedSnapshot {
    segments: BTreeMap<String, Segment>,
    shards: u32,
    layers: Vec<GenLayer>,
    num_docs: usize,
    num_postings: Option<u64>,
    num_indexed_concepts: Option<u64>,
    timing: IndexTiming,
    walk_stats: WalkStats,
}

/// Requires a manifest stat, anchoring the error to the manifest file.
fn require_stat(manifest: &ncx_store::Manifest, key: &str) -> Result<u64, StoreError> {
    manifest
        .stat(key)
        .ok_or_else(|| StoreError::corrupt(ncx_store::MANIFEST_NAME, format!("missing stat {key}")))
}

/// The KG fingerprint gate shared by every open/flush path: refuses a
/// snapshot built against a different graph before touching a segment.
fn check_kg_fingerprint(
    manifest: &ncx_store::Manifest,
    kg: &KnowledgeGraph,
) -> Result<(), StoreError> {
    let fingerprint = [
        ("kg_concepts", kg.num_concepts() as u64),
        ("kg_instances", kg.num_instances() as u64),
        ("kg_memberships", kg.num_memberships() as u64),
    ];
    for (key, actual) in fingerprint {
        let recorded = require_stat(manifest, key)?;
        if recorded != actual {
            return Err(StoreError::Incompatible {
                detail: format!(
                    "snapshot was built against a different knowledge graph \
                     ({key}: snapshot {recorded}, runtime {actual})"
                ),
            });
        }
    }
    Ok(())
}

impl LoadedSnapshot {
    /// Opens `dir`, runs the manifest gates (format version, KG
    /// fingerprint, generation accounting), and reads every segment into
    /// memory with full verification. No decoding happens yet.
    pub fn load(dir: &Path, kg: &KnowledgeGraph) -> Result<Self, StoreError> {
        let snapshot = Snapshot::open(dir)?;
        Self::from_snapshot(&snapshot, kg)
    }

    fn from_snapshot(snapshot: &Snapshot, kg: &KnowledgeGraph) -> Result<Self, StoreError> {
        let manifest = snapshot.manifest();
        check_kg_fingerprint(manifest, kg)?;
        let num_docs = require_stat(manifest, "num_docs")? as usize;

        // The generation stack must account for the corpus exactly:
        // layer starts are the running sum of earlier doc counts.
        let mut layers = Vec::with_capacity(manifest.generations.len());
        let mut start = 0usize;
        for g in &manifest.generations {
            layers.push(GenLayer {
                gen: g.gen,
                start,
                docs: g.docs as usize,
            });
            start = start.checked_add(g.docs as usize).ok_or_else(|| {
                StoreError::corrupt(ncx_store::MANIFEST_NAME, "generation doc counts overflow")
            })?;
        }
        if start != num_docs {
            return Err(StoreError::corrupt(
                ncx_store::MANIFEST_NAME,
                format!("generations hold {start} documents, num_docs says {num_docs}"),
            ));
        }

        let timing = IndexTiming {
            entity_linking: stat_duration(manifest, "timing_linking_nanos"),
            relevance_scoring: stat_duration(manifest, "timing_scoring_nanos"),
            total_wall: stat_duration(manifest, "timing_wall_nanos"),
            docs: num_docs,
        };
        let walk_stats = WalkStats {
            walks: manifest.stat("walks").unwrap_or(0),
            hits: manifest.stat("walk_hits").unwrap_or(0),
            dead_ends: manifest.stat("walk_dead_ends").unwrap_or(0),
            // Absent in pre-walk-engine snapshots; 0 is the faithful default.
            early_stops: manifest.stat("walk_early_stops").unwrap_or(0),
            // Absent in pre-observability snapshots.
            estimates: manifest.stat("walk_estimates").unwrap_or(0),
        };
        Ok(Self {
            segments: snapshot.read_all_segments()?,
            shards: manifest.shards,
            layers,
            num_docs,
            num_postings: manifest.stat("num_postings"),
            num_indexed_concepts: manifest.stat("num_indexed_concepts"),
            timing,
            walk_stats,
        })
    }

    /// Documents in the snapshot's corpus.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    fn segment(&self, name: &str) -> Result<&Segment, StoreError> {
        self.segments
            .get(name)
            .ok_or_else(|| StoreError::MissingFile { file: name.into() })
    }

    /// Decodes everything *except* the concept shards: layered doc
    /// lists, entity index and article store, with the cross-segment
    /// corpus-size checks.
    fn decode_docs(&self) -> Result<DecodedDocs, StoreError> {
        let mut doc_concepts = Vec::with_capacity(self.num_docs);
        let mut entity_index = EntityIndex::new();
        let mut store = DocumentStore::new();
        for layer in &self.layers {
            read_doclists_into(
                self.segment(&doclists_file(layer.gen))?,
                layer.docs,
                &mut doc_concepts,
            )?;
            read_entity_index_into(
                self.segment(&entities_file(layer.gen))?,
                &mut entity_index,
                Some(layer.docs as u64),
            )?;
            read_docstore_into(
                self.segment(&docstore_file(layer.gen))?,
                &mut store,
                Some(layer.docs as u64),
            )?;
        }
        // Cross-segment consistency: every view must agree on corpus size.
        for (what, n) in [
            ("doclists documents", doc_concepts.len()),
            ("entities documents", entity_index.num_docs()),
            ("docstore documents", store.len()),
        ] {
            if n != self.num_docs {
                return Err(StoreError::Incompatible {
                    detail: format!("{what}: {n}, manifest num_docs: {}", self.num_docs),
                });
            }
        }
        Ok((doc_concepts, entity_index, store))
    }

    /// The `(layer, segment)` stack of one concept shard, oldest first.
    fn shard_layers(&self, shard: u32) -> Result<Vec<(GenLayer, &Segment)>, StoreError> {
        self.layers
            .iter()
            .map(|layer| Ok((*layer, self.segment(&shard_file(layer.gen, shard))?)))
            .collect()
    }

    /// Decodes one independent (index, corpus) pair from the loaded
    /// bytes. Callable any number of times; each call allocates fresh
    /// structures.
    pub fn decode(&self) -> Result<(NcxIndex, DocumentStore), StoreError> {
        // ---- concept shards, layered ----
        let mut concept_postings: FxHashMap<ConceptId, Vec<ConceptPosting>> = FxHashMap::default();
        let mut total_postings = 0u64;
        for i in 0..self.shards {
            let (map, count) = decode_shard(i, self.shards, self.num_docs, &self.shard_layers(i)?)?;
            total_postings += count;
            // Shard membership was verified per entry, so the per-shard
            // maps are disjoint and extend cannot lose a list.
            concept_postings.extend(map);
        }
        if Some(total_postings) != self.num_postings {
            return Err(StoreError::corrupt(
                ncx_store::MANIFEST_NAME,
                format!(
                    "shards hold {total_postings} postings, manifest says {:?}",
                    self.num_postings
                ),
            ));
        }

        let (doc_concepts, entity_index, store) = self.decode_docs()?;
        let index = NcxIndex::from_parts(
            entity_index,
            concept_postings,
            doc_concepts,
            self.timing,
            self.walk_stats,
        );
        Ok((index, store))
    }

    /// Decodes the corpus but leaves the concept shards as verified
    /// bytes behind a [`LazyConceptShards`] table — each shard
    /// materialises on first touch. Consumes the loaded snapshot (the
    /// shard segments move into the index).
    pub fn decode_lazy(mut self) -> Result<(NcxIndex, DocumentStore), StoreError> {
        let (doc_concepts, entity_index, store) = self.decode_docs()?;
        // The lazy table fulfils `num_postings`/`num_indexed_concepts`
        // from the manifest stats instead of a full decode, so they are
        // required here (every writer records them).
        let remaining_postings = self.num_postings.ok_or_else(|| {
            StoreError::corrupt(ncx_store::MANIFEST_NAME, "missing stat num_postings")
        })? as usize;
        let remaining_concepts = self.num_indexed_concepts.ok_or_else(|| {
            StoreError::corrupt(
                ncx_store::MANIFEST_NAME,
                "missing stat num_indexed_concepts",
            )
        })? as usize;
        let mut layers: Vec<Vec<(GenLayer, Segment)>> = Vec::with_capacity(self.shards as usize);
        for i in 0..self.shards {
            let mut stack = Vec::with_capacity(self.layers.len());
            for layer in &self.layers {
                let name = shard_file(layer.gen, i);
                let seg = self
                    .segments
                    .remove(&name)
                    .ok_or(StoreError::MissingFile { file: name })?;
                stack.push((*layer, seg));
            }
            layers.push(stack);
        }
        let lazy = LazyConceptShards {
            shards: self.shards,
            num_docs: self.num_docs,
            layers,
            decoded: (0..self.shards).map(|_| OnceLock::new()).collect(),
            drained: vec![false; self.shards as usize],
            remaining_concepts,
            remaining_postings,
        };
        let index = NcxIndex::from_parts_lazy(
            entity_index,
            lazy,
            doc_concepts,
            self.timing,
            self.walk_stats,
        );
        Ok((index, store))
    }
}

/// Decodes one concept shard across the generation stack into a merged
/// posting map, enforcing per-segment invariants: strictly ascending
/// concept ids, shard membership, and doc ids confined to the owning
/// generation's `[start, start + docs)` range — which is what makes
/// cross-generation concatenation provably sorted. Returns the map and
/// the posting count.
#[allow(clippy::type_complexity)]
fn decode_shard(
    shard: u32,
    shards: u32,
    num_docs: usize,
    layers: &[(GenLayer, &Segment)],
) -> Result<(FxHashMap<ConceptId, Vec<ConceptPosting>>, u64), StoreError> {
    debug_assert!(num_docs >= layers.iter().map(|(l, _)| l.docs).sum::<usize>());
    let mut map: FxHashMap<ConceptId, Vec<ConceptPosting>> = FxHashMap::default();
    let mut total = 0u64;
    for (layer, segment) in layers {
        let mut cursor = ShardCursor::new(segment)?;
        let mut prev_concept: Option<u32> = None;
        while let Some((concept, count)) = cursor.next_concept()? {
            if prev_concept.is_some_and(|p| p >= concept.raw()) {
                return Err(StoreError::corrupt(
                    segment.name(),
                    format!("concept {} out of order within its shard", concept.raw()),
                ));
            }
            prev_concept = Some(concept.raw());
            if shard_of(u64::from(concept.raw()), shards) != shard {
                return Err(StoreError::corrupt(
                    segment.name(),
                    format!("concept {} does not belong to shard {shard}", concept.raw()),
                ));
            }
            let list = map.entry(concept).or_default();
            list.reserve(count);
            while let Some(posting) = cursor.next_posting()? {
                let d = posting.doc.index();
                if d < layer.start || d >= layer.start + layer.docs {
                    return Err(StoreError::corrupt(
                        segment.name(),
                        format!(
                            "doc id {} outside generation {} range [{}, {})",
                            posting.doc.raw(),
                            layer.gen,
                            layer.start,
                            layer.start + layer.docs
                        ),
                    ));
                }
                list.push(posting);
                total += 1;
            }
        }
        cursor.finish()?;
    }
    Ok((map, total))
}

/// The cached per-shard decode outcome: the postings map on success, a
/// permanent typed error on failure.
type DecodedShard = Result<FxHashMap<ConceptId, Vec<ConceptPosting>>, StoreError>;

/// Concept-posting shards held as verified bytes, decoded on first
/// touch — the lazy half of [`open_snapshot_lazy`].
///
/// Shards decode through a per-shard [`OnceLock`], so concurrent
/// readers pay the decode once and the table stays shareable across
/// threads (`&NcExplorer` from many sessions). Streaming ingest
/// **drains** a shard before appending to it — the decoded map moves
/// into the index's eager table, keeping the two views disjoint.
///
/// Every byte was already length- and checksum-verified at open, so a
/// decode failure on first touch means a buggy or adversarial snapshot
/// writer rather than bit rot. The **query path** surfaces it as a
/// typed [`StoreError`] through the fallible accessors
/// (`try_postings` →
/// [`NcxIndex::try_postings`](crate::indexer::NcxIndex::try_postings)),
/// so the serving layer can fail one query and quarantine the replica
/// instead of aborting the process. The failure is cached in the
/// shard's cell — a corrupt shard stays corrupt, so every later touch
/// re-reports the same error. Only the **ingest/maintenance path**
/// (`drain`, `undrained_concepts`),
/// which must move the decoded map by value and has no error channel,
/// still panics on a faulted shard; callers on that path hold a write
/// lock and are expected to have verified the snapshot (the eager
/// [`open_snapshot`] reports the same condition as a typed error up
/// front — use it for untrusted snapshots).
#[derive(Debug)]
pub struct LazyConceptShards {
    shards: u32,
    num_docs: usize,
    /// `[shard][layer]` — each shard's generation stack, oldest first.
    layers: Vec<Vec<(GenLayer, Segment)>>,
    /// Decode outcome per shard. An `Err` is permanent: the bytes will
    /// not get better, and re-decoding on every query would turn one
    /// corrupt shard into a CPU sink.
    decoded: Vec<OnceLock<DecodedShard>>,
    drained: Vec<bool>,
    remaining_concepts: usize,
    remaining_postings: usize,
}

impl LazyConceptShards {
    /// The snapshot's shard count.
    pub(crate) fn shard_count(&self) -> u32 {
        self.shards
    }

    /// Indexed concepts not yet moved into the eager table.
    pub(crate) fn remaining_concepts(&self) -> usize {
        self.remaining_concepts
    }

    /// Postings not yet moved into the eager table.
    pub(crate) fn remaining_postings(&self) -> usize {
        self.remaining_postings
    }

    /// Whether `shard` was drained into the eager table by an ingest.
    pub(crate) fn is_drained(&self, shard: u32) -> bool {
        self.drained[shard as usize]
    }

    /// Shards already materialised (successfully decoded or drained) —
    /// observability for tests and diagnostics. A shard whose decode
    /// *failed* does not count: its postings are not servable.
    pub fn materialized_shards(&self) -> usize {
        self.decoded
            .iter()
            .zip(&self.drained)
            .filter(|(cell, &drained)| drained || matches!(cell.get(), Some(Ok(_))))
            .count()
    }

    /// The decoded map of `shard`, materialising it on first touch. A
    /// decode failure is cached: every subsequent force re-reports the
    /// same [`StoreError`] without re-reading the bytes.
    fn force(&self, shard: u32) -> Result<&FxHashMap<ConceptId, Vec<ConceptPosting>>, StoreError> {
        self.decoded[shard as usize]
            .get_or_init(|| {
                crate::fault::check(crate::fault::SITE_LAZY_DECODE)?;
                let refs: Vec<(GenLayer, &Segment)> = self.layers[shard as usize]
                    .iter()
                    .map(|(layer, seg)| (*layer, seg))
                    .collect();
                decode_shard(shard, self.shards, self.num_docs, &refs).map(|(map, _)| map)
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// Postings of `c`, decoding its shard on first touch. A drained
    /// shard answers from the eager table instead (the caller checks it
    /// first), so this returns empty for drained shards. A shard whose
    /// decode failed yields the cached [`StoreError`].
    pub(crate) fn try_postings(&self, c: ConceptId) -> Result<&[ConceptPosting], StoreError> {
        let shard = shard_of(u64::from(c.raw()), self.shards);
        if self.is_drained(shard) {
            return Ok(&[]);
        }
        Ok(self.force(shard)?.get(&c).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// Moves `shard`'s decoded map out for the eager table (streaming
    /// ingest appends there). Idempotent: an already-drained shard
    /// yields an empty map.
    ///
    /// # Panics
    ///
    /// Panics if the shard's decode fails (or already failed): ingest
    /// has mutated nothing yet at its single drain site, and a caller
    /// appending to a shard it cannot read has no sane continuation.
    pub(crate) fn drain(&mut self, shard: u32) -> FxHashMap<ConceptId, Vec<ConceptPosting>> {
        if self.is_drained(shard) {
            return FxHashMap::default();
        }
        if let Err(e) = self.force(shard) {
            panic!(
                "cannot ingest into concept shard {shard}: lazy decode failed on \
                 checksummed bytes (snapshot writer bug or adversarial input — use \
                 the eager open for untrusted snapshots): {e}"
            );
        }
        let map = self.decoded[shard as usize]
            .take()
            .and_then(Result::ok)
            .unwrap_or_default();
        self.drained[shard as usize] = true;
        // Saturating: the counters derive from manifest stats, which a
        // hostile writer controls — never panic over bookkeeping.
        self.remaining_concepts = self.remaining_concepts.saturating_sub(map.len());
        self.remaining_postings = self
            .remaining_postings
            .saturating_sub(map.values().map(Vec::len).sum());
        map
    }

    /// Concepts living in not-yet-drained shards (forces their decode).
    ///
    /// # Panics
    ///
    /// Panics on a shard whose decode fails — this is a full-sweep
    /// maintenance accessor (diagnostics, export) with no per-shard
    /// error channel.
    pub(crate) fn undrained_concepts(&self) -> impl Iterator<Item = ConceptId> + '_ {
        (0..self.shards)
            .filter(|&s| !self.is_drained(s))
            .flat_map(|s| {
                self.force(s)
                    .unwrap_or_else(|e| {
                        panic!("lazy decode of concept shard {s} failed during full sweep: {e}")
                    })
                    .keys()
                    .copied()
            })
    }
}

fn stat_duration(manifest: &ncx_store::Manifest, key: &str) -> Duration {
    Duration::from_nanos(manifest.stat(key).unwrap_or(0))
}

/// Decodes one (base or delta) doclists segment **onto** `out`,
/// appending `expected_docs` per-document concept lists in doc-id
/// order — replaying generations oldest-first reconstructs the
/// monolithic vector.
fn read_doclists_into(
    segment: &Segment,
    expected_docs: usize,
    out: &mut Vec<Vec<(ConceptId, f64)>>,
) -> Result<(), StoreError> {
    if segment.kind() != SEGMENT_KIND_DOCLISTS {
        return Err(StoreError::corrupt(
            segment.name(),
            format!("expected doclists kind, found {}", segment.kind()),
        ));
    }
    let mut v = segment.view();
    // Each document contributes at least its 1-byte count varint.
    let n = v.get_count(v.remaining() as u64)?;
    if n != expected_docs {
        return Err(StoreError::corrupt(
            segment.name(),
            format!("segment holds {n} documents, generation declares {expected_docs}"),
        ));
    }
    out.reserve(n);
    for _ in 0..n {
        let m = v.get_count(v.remaining() as u64 / MIN_DOCLIST_ITEM_BYTES)?;
        let mut list = Vec::with_capacity(m);
        let mut prev = 0u32;
        for j in 0..m {
            let delta = v.get_varint()?;
            let raw = u32::try_from(u64::from(prev) + delta).map_err(|_| {
                StoreError::corrupt(segment.name(), "concept id delta overflows u32")
            })?;
            if j > 0 && delta == 0 {
                return Err(StoreError::corrupt(
                    segment.name(),
                    "duplicate concept in a document list",
                ));
            }
            let cdr = v.get_f64()?;
            list.push((ConceptId::new(raw), cdr));
            prev = raw;
        }
        out.push(list);
    }
    v.finish()?;
    Ok(())
}

/// Zero-copy streaming reader over one concept-posting shard: decodes
/// `(concept, postings…)` straight out of the segment's byte slice with
/// no per-posting allocation. Skipping a concept's remaining postings is
/// handled transparently by the next [`next_concept`](Self::next_concept)
/// call, so partial consumers (e.g. a single-concept lookup) stay
/// correct.
pub struct ShardCursor<'a> {
    view: SegView<'a>,
    file: String,
    concepts_left: usize,
    postings_left: usize,
    prev_doc: u32,
    first_in_list: bool,
}

impl<'a> ShardCursor<'a> {
    /// Starts decoding a shard segment.
    pub fn new(segment: &'a Segment) -> Result<Self, StoreError> {
        if segment.kind() != SEGMENT_KIND_CONCEPTS {
            return Err(StoreError::corrupt(
                segment.name(),
                format!("expected concept-shard kind, found {}", segment.kind()),
            ));
        }
        let mut view = segment.view();
        let concepts_left = view.get_count(view.remaining() as u64 / MIN_CONCEPT_BYTES)?;
        Ok(Self {
            view,
            file: segment.name().to_string(),
            concepts_left,
            postings_left: 0,
            prev_doc: 0,
            first_in_list: true,
        })
    }

    /// Advances to the next concept, returning its id and posting count,
    /// or `None` at the end of the shard.
    pub fn next_concept(&mut self) -> Result<Option<(ConceptId, usize)>, StoreError> {
        while self.postings_left > 0 {
            self.next_posting()?;
        }
        if self.concepts_left == 0 {
            return Ok(None);
        }
        self.concepts_left -= 1;
        let concept = ConceptId::new(self.view.get_u32()?);
        self.postings_left = self
            .view
            .get_count(self.view.remaining() as u64 / MIN_POSTING_BYTES)?;
        self.prev_doc = 0;
        self.first_in_list = true;
        Ok(Some((concept, self.postings_left)))
    }

    /// Decodes the next posting of the current concept, or `None` when
    /// its list is exhausted.
    pub fn next_posting(&mut self) -> Result<Option<ConceptPosting>, StoreError> {
        if self.postings_left == 0 {
            return Ok(None);
        }
        self.postings_left -= 1;
        let delta = self.view.get_varint()?;
        let doc = u32::try_from(u64::from(self.prev_doc) + delta)
            .map_err(|_| StoreError::corrupt(&self.file, "doc id delta overflows u32"))?;
        if delta == 0 && !self.first_in_list {
            return Err(StoreError::corrupt(
                &self.file,
                "duplicate doc id in a posting list",
            ));
        }
        self.first_in_list = false;
        self.prev_doc = doc;
        let cdr = self.view.get_f64()?;
        let cdro = self.view.get_f64()?;
        let cdrc = self.view.get_f64()?;
        let pivot = InstanceId::new(self.view.get_u32()?);
        Ok(Some(ConceptPosting {
            doc: DocId::new(doc),
            cdr,
            cdro,
            cdrc,
            pivot,
        }))
    }

    /// Asserts the shard is fully consumed with no trailing bytes.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.concepts_left != 0 || self.postings_left != 0 {
            return Err(StoreError::corrupt(
                &self.file,
                "shard cursor finished before the shard ended",
            ));
        }
        self.view.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn posting(doc: u32, cdr: f64) -> ConceptPosting {
        ConceptPosting {
            doc: DocId::new(doc),
            cdr,
            cdro: cdr * 0.5,
            cdrc: 2.0,
            pivot: InstanceId::new(doc + 100),
        }
    }

    fn shard_with(concepts: &[(u32, Vec<ConceptPosting>)]) -> Segment {
        let mut seg = SegmentWriter::new(SEGMENT_KIND_CONCEPTS);
        seg.put_varint(concepts.len() as u64);
        for (c, postings) in concepts {
            seg.put_u32(*c);
            seg.put_varint(postings.len() as u64);
            let mut prev = 0u32;
            for p in postings {
                seg.put_varint(u64::from(p.doc.raw() - prev));
                seg.put_f64(p.cdr);
                seg.put_f64(p.cdro);
                seg.put_f64(p.cdrc);
                seg.put_u32(p.pivot.raw());
                prev = p.doc.raw();
            }
        }
        Segment::from_bytes("concepts-000.seg", seg.into_bytes()).unwrap()
    }

    #[test]
    fn generation_file_names() {
        assert_eq!(shard_file(0, 3), "concepts-003.seg");
        assert_eq!(shard_file(2, 3), "concepts-g002-003.seg");
        assert_eq!(doclists_file(0), "doclists.seg");
        assert_eq!(doclists_file(12), "doclists-g012.seg");
        assert_eq!(entities_file(1), "entities-g001.seg");
        assert_eq!(docstore_file(1), "docstore-g001.seg");
    }

    #[test]
    fn shard_cursor_streams_exact_postings() {
        let lists = vec![
            (
                3u32,
                vec![posting(0, 0.25), posting(5, 0.5), posting(6, 1.0)],
            ),
            (9u32, vec![posting(2, 0.125)]),
        ];
        let segment = shard_with(&lists);
        let mut cursor = ShardCursor::new(&segment).unwrap();
        for (c, expected) in &lists {
            let (concept, count) = cursor.next_concept().unwrap().unwrap();
            assert_eq!(concept.raw(), *c);
            assert_eq!(count, expected.len());
            for want in expected {
                let got = cursor.next_posting().unwrap().unwrap();
                assert_eq!(got, *want);
            }
            assert!(cursor.next_posting().unwrap().is_none());
        }
        assert!(cursor.next_concept().unwrap().is_none());
        cursor.finish().unwrap();
    }

    #[test]
    fn shard_cursor_skips_unconsumed_postings() {
        let lists = vec![
            (
                1u32,
                vec![posting(0, 1.0), posting(1, 2.0), posting(2, 3.0)],
            ),
            (2u32, vec![posting(7, 4.0)]),
        ];
        let segment = shard_with(&lists);
        let mut cursor = ShardCursor::new(&segment).unwrap();
        cursor.next_concept().unwrap().unwrap();
        // Read only one of three postings, then jump to the next concept.
        cursor.next_posting().unwrap().unwrap();
        let (concept, _) = cursor.next_concept().unwrap().unwrap();
        assert_eq!(concept.raw(), 2);
        assert_eq!(cursor.next_posting().unwrap().unwrap().doc.raw(), 7);
        assert!(cursor.next_concept().unwrap().is_none());
        cursor.finish().unwrap();
    }

    #[test]
    fn duplicate_doc_ids_are_corrupt() {
        // Two postings with delta 0 (same doc) must be refused.
        let mut seg = SegmentWriter::new(SEGMENT_KIND_CONCEPTS);
        seg.put_varint(1);
        seg.put_u32(1);
        seg.put_varint(2);
        for _ in 0..2 {
            seg.put_varint(3); // first: doc 3; second: delta 3 → doc 6 (ok)
            seg.put_f64(1.0);
            seg.put_f64(1.0);
            seg.put_f64(1.0);
            seg.put_u32(0);
        }
        let segment = Segment::from_bytes("concepts-000.seg", seg.into_bytes()).unwrap();
        let mut cursor = ShardCursor::new(&segment).unwrap();
        cursor.next_concept().unwrap();
        assert!(cursor.next_posting().is_ok());
        assert!(cursor.next_posting().is_ok(), "distinct docs decode fine");

        let mut seg = SegmentWriter::new(SEGMENT_KIND_CONCEPTS);
        seg.put_varint(1);
        seg.put_u32(1);
        seg.put_varint(2);
        for delta in [5u64, 0] {
            seg.put_varint(delta);
            seg.put_f64(1.0);
            seg.put_f64(1.0);
            seg.put_f64(1.0);
            seg.put_u32(0);
        }
        let segment = Segment::from_bytes("concepts-000.seg", seg.into_bytes()).unwrap();
        let mut cursor = ShardCursor::new(&segment).unwrap();
        cursor.next_concept().unwrap();
        cursor.next_posting().unwrap();
        assert!(matches!(
            cursor.next_posting(),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn wrong_kind_is_refused() {
        let seg = SegmentWriter::new(SEGMENT_KIND_DOCLISTS);
        let segment = Segment::from_bytes("doclists.seg", seg.into_bytes()).unwrap();
        assert!(ShardCursor::new(&segment).is_err());
    }

    #[test]
    fn layered_shard_decode_matches_monolithic() {
        // An index split at an arbitrary doc boundary and encoded as
        // base + delta must decode to exactly the monolithic map —
        // score bits included.
        let c = 4u32; // any id; single-shard layout below
        let full = vec![(
            c,
            vec![
                posting(0, 0.75),
                posting(2, 0.5),
                posting(3, 1.25),
                posting(5, f64::MIN_POSITIVE),
            ],
        )];
        let index = NcxIndex::from_raw_postings(
            6,
            full.iter()
                .map(|(c, v)| (ConceptId::new(*c), v.clone()))
                .collect(),
        );
        let monolithic = {
            let seg = shard_with(&full);
            let layers = [(
                GenLayer {
                    gen: 0,
                    start: 0,
                    docs: 6,
                },
                &seg,
            )];
            decode_shard(0, 1, 6, &layers).unwrap()
        };

        // Split at doc 3: base holds docs [0, 3), delta holds [3, 6).
        let encode_range = |first_doc: usize| {
            let postings = index.postings(ConceptId::new(c));
            let split = postings.partition_point(|p| p.doc.index() < first_doc);
            shard_with(&[(c, postings[split..].to_vec())])
        };
        let base = encode_range(0);
        let base = {
            // Re-encode the base as only docs [0, 3).
            let postings: Vec<ConceptPosting> = index
                .postings(ConceptId::new(c))
                .iter()
                .filter(|p| p.doc.index() < 3)
                .copied()
                .collect();
            drop(base);
            shard_with(&[(c, postings)])
        };
        let delta = encode_range(3);
        let layers = [
            (
                GenLayer {
                    gen: 0,
                    start: 0,
                    docs: 3,
                },
                &base,
            ),
            (
                GenLayer {
                    gen: 1,
                    start: 3,
                    docs: 3,
                },
                &delta,
            ),
        ];
        let layered = decode_shard(0, 1, 6, &layers).unwrap();
        assert_eq!(layered.1, monolithic.1);
        let (a, b) = (&layered.0, &monolithic.0);
        assert_eq!(a.len(), b.len());
        for (k, v) in a {
            assert_eq!(v, &b[k], "layered postings diverged for concept {k:?}");
        }
    }

    #[test]
    fn out_of_range_generation_docs_are_corrupt() {
        // A delta generation claiming docs outside its [start, start+docs)
        // window must be refused — the sortedness of the merged lists
        // depends on it.
        let seg = shard_with(&[(4u32, vec![posting(1, 1.0)])]);
        let layers = [(
            GenLayer {
                gen: 1,
                start: 3,
                docs: 2,
            },
            &seg,
        )];
        assert!(matches!(
            decode_shard(0, 1, 5, &layers),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn unsorted_concepts_in_a_shard_are_corrupt() {
        let seg = shard_with(&[(9u32, vec![posting(0, 1.0)]), (4u32, vec![posting(1, 1.0)])]);
        let layers = [(
            GenLayer {
                gen: 0,
                start: 0,
                docs: 2,
            },
            &seg,
        )];
        assert!(matches!(
            decode_shard(0, 1, 2, &layers),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn absurd_declared_counts_are_corrupt_not_allocations() {
        // A crafted shard declaring trillions of concepts (or postings)
        // must be refused by the bytes-available bound before any
        // capacity is reserved.
        let mut seg = SegmentWriter::new(SEGMENT_KIND_CONCEPTS);
        seg.put_varint(1 << 40);
        let segment = Segment::from_bytes("concepts-000.seg", seg.into_bytes()).unwrap();
        assert!(matches!(
            ShardCursor::new(&segment),
            Err(StoreError::Corrupt { .. })
        ));

        let mut seg = SegmentWriter::new(SEGMENT_KIND_CONCEPTS);
        seg.put_varint(1); // one concept…
        seg.put_u32(7);
        seg.put_varint(1 << 40); // …claiming 2^40 postings
        let segment = Segment::from_bytes("concepts-000.seg", seg.into_bytes()).unwrap();
        let mut cursor = ShardCursor::new(&segment).unwrap();
        assert!(matches!(
            cursor.next_concept(),
            Err(StoreError::Corrupt { .. })
        ));

        let mut seg = SegmentWriter::new(SEGMENT_KIND_DOCLISTS);
        seg.put_varint(1 << 40);
        let segment = Segment::from_bytes("doclists.seg", seg.into_bytes()).unwrap();
        assert!(matches!(
            read_doclists_into(&segment, 1 << 40, &mut Vec::new()),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
