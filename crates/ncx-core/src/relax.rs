//! Query relaxation and peer suggestions.
//!
//! The paper's Fig. 1 opens with a dead end: "CryptoX fraud" returns
//! nothing, so the analyst pivots — first to peers of the entity, then to
//! broader concepts. This module automates both pivots when a concept
//! pattern query matches no documents:
//!
//! * [`relax`] — for each facet, try (a) dropping it and (b) replacing it
//!   with each `broader` ancestor, reporting how many documents each
//!   relaxation would match;
//! * [`peer_entities`] — sibling instances under an entity's most
//!   specific concept (the "FTX is a peer of CryptoX" step), ranked by
//!   how much news coverage each peer has.

use crate::config::NcxConfig;
use crate::indexer::NcxIndex;
use crate::par::Pool;
use crate::query::ConceptQuery;
use crate::rollup::matched_docs;
use ncx_kg::{ontology, ConceptId, InstanceId, KnowledgeGraph};

/// One relaxation proposal.
#[derive(Debug, Clone, PartialEq)]
pub enum Relaxation {
    /// Drop this facet entirely.
    Drop(ConceptId),
    /// Replace the facet with a `broader` ancestor.
    Broaden {
        /// The facet being widened.
        from: ConceptId,
        /// The ancestor replacing it.
        to: ConceptId,
    },
}

/// A relaxation with its resulting query and match count.
#[derive(Debug, Clone, PartialEq)]
pub struct RelaxOption {
    /// The edit.
    pub relaxation: Relaxation,
    /// The query after the edit.
    pub query: ConceptQuery,
    /// Documents the relaxed query matches.
    pub matches: usize,
}

/// Proposes relaxations of `query`, most productive first (ties: least
/// drastic — broadening beats dropping). Only options that match at least
/// one document are returned.
pub fn relax(
    index: &NcxIndex,
    kg: &KnowledgeGraph,
    query: &ConceptQuery,
    config: &NcxConfig,
    pool: &Pool,
) -> Vec<RelaxOption> {
    let mut out = Vec::new();
    for &facet in query.concepts() {
        // (a) drop the facet (only meaningful for multi-facet queries).
        if query.len() > 1 {
            let rest: Vec<ConceptId> = query
                .concepts()
                .iter()
                .copied()
                .filter(|&c| c != facet)
                .collect();
            let q = ConceptQuery::new(rest);
            let matches = matched_docs(index, kg, &q, config, pool).len();
            if matches > 0 {
                out.push(RelaxOption {
                    relaxation: Relaxation::Drop(facet),
                    query: q,
                    matches,
                });
            }
        }
        // (b) broaden the facet to each ancestor, nearest first.
        for to in ontology::ancestors(kg, facet) {
            if query.contains(to) {
                continue;
            }
            let concepts: Vec<ConceptId> = query
                .concepts()
                .iter()
                .map(|&c| if c == facet { to } else { c })
                .collect();
            let q = ConceptQuery::new(concepts);
            let matches = matched_docs(index, kg, &q, config, pool).len();
            if matches > 0 {
                out.push(RelaxOption {
                    relaxation: Relaxation::Broaden { from: facet, to },
                    query: q,
                    matches,
                });
            }
        }
    }
    out.sort_by(|a, b| {
        b.matches.cmp(&a.matches).then_with(|| {
            let rank = |r: &Relaxation| match r {
                Relaxation::Broaden { .. } => 0,
                Relaxation::Drop(_) => 1,
            };
            rank(&a.relaxation).cmp(&rank(&b.relaxation))
        })
    });
    out
}

/// Peer entities of `entity`: the other members of its most specific
/// concept, ranked by news coverage (document frequency in the index),
/// most covered first. The peer pivot of Fig. 1.
pub fn peer_entities(
    index: &NcxIndex,
    kg: &KnowledgeGraph,
    entity: InstanceId,
    k: usize,
) -> Vec<(InstanceId, usize)> {
    let Some(&concept) = kg.concepts_of(entity).iter().max_by(|&&a, &&b| {
        kg.specificity(a)
            .partial_cmp(&kg.specificity(b))
            .unwrap_or(std::cmp::Ordering::Equal)
    }) else {
        return Vec::new();
    };
    let mut peers: Vec<(InstanceId, usize)> = kg
        .members(concept)
        .iter()
        .copied()
        .filter(|&v| v != entity)
        .map(|v| (v, index.entity_index.docs_with(v).len()))
        .filter(|&(_, df)| df > 0)
        .collect();
    peers.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    peers.truncate(k);
    peers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NcxConfig;
    use crate::indexer::Indexer;
    use ncx_index::{DocumentStore, NewsSource};
    use ncx_kg::GraphBuilder;
    use ncx_text::{GazetteerLinker, NlpPipeline};

    /// Taxonomy: Company <- Bitcoin Exchange {FTX, Binance, CryptoX};
    /// Crime {fraud}; Labor {strike}. Corpus covers FTX+fraud and
    /// Binance+strike — nothing covers CryptoX.
    fn build() -> (KnowledgeGraph, NcxIndex, NcxConfig) {
        let mut b = GraphBuilder::new();
        let company = b.concept("Company");
        let exch = b.concept("Bitcoin Exchange");
        b.broader(exch, company);
        let crime = b.concept("Financial Crime");
        let labor = b.concept("Labor Dispute");
        let ftx = b.instance("FTX");
        let bnb = b.instance("Binance");
        let cryptox = b.instance("CryptoX");
        let fraud = b.instance("fraud");
        let strike = b.instance("strike");
        let dbs = b.instance("DBS");
        b.member(exch, ftx);
        b.member(exch, bnb);
        b.member(exch, cryptox);
        b.member(company, dbs);
        b.member(crime, fraud);
        b.member(labor, strike);
        b.fact(ftx, "accusedOf", fraud);
        b.fact(bnb, "hit_by", strike);
        let kg = b.build();

        let mut store = DocumentStore::new();
        store.add(
            NewsSource::Reuters,
            "FTX fraud case".into(),
            "FTX was accused of fraud.".into(),
            0,
        );
        store.add(
            NewsSource::Reuters,
            "Binance strike".into(),
            "Binance staff joined a strike.".into(),
            1,
        );
        store.add(
            NewsSource::Nyt,
            "DBS results".into(),
            "DBS posted earnings.".into(),
            2,
        );
        let nlp = NlpPipeline::new(GazetteerLinker::build(&kg));
        let config = NcxConfig {
            parallelism: crate::config::Parallelism::sequential(),
            samples: 50,
            max_member_fraction: 1.0,
            ..NcxConfig::default()
        };
        let index = Indexer::new(&kg, &nlp, config.clone()).index_corpus(&store);
        (kg, index, config)
    }

    #[test]
    fn relax_dead_end_query() {
        let (kg, index, config) = build();
        // "Financial Crime ∧ Labor Dispute" matches nothing (no doc has both).
        let q = ConceptQuery::from_names(&kg, &["Financial Crime", "Labor Dispute"]).unwrap();
        assert!(matched_docs(&index, &kg, &q, &config, &Pool::new(1)).is_empty());
        let options = relax(&index, &kg, &q, &config, &Pool::new(1));
        assert!(!options.is_empty());
        // Dropping either facet yields exactly one match.
        for opt in &options {
            assert!(opt.matches >= 1);
            assert!(matches!(opt.relaxation, Relaxation::Drop(_)));
        }
        assert_eq!(options.len(), 2);
    }

    #[test]
    fn relax_prefers_broadening_on_ties() {
        let (kg, index, config) = build();
        // Single facet "Bitcoin Exchange": broadening to Company keeps the
        // same two matches (dropping is not offered for single facets).
        let q = ConceptQuery::from_names(&kg, &["Bitcoin Exchange"]).unwrap();
        let options = relax(&index, &kg, &q, &config, &Pool::new(1));
        assert!(!options.is_empty());
        assert!(matches!(options[0].relaxation, Relaxation::Broaden { .. }));
        // Broadened to Company: DBS article joins the matches.
        assert_eq!(options[0].matches, 3);
    }

    #[test]
    fn relax_nothing_when_query_already_empty() {
        let (kg, index, config) = build();
        let q = ConceptQuery::new([]);
        assert!(relax(&index, &kg, &q, &config, &Pool::new(1)).is_empty());
    }

    #[test]
    fn peers_ranked_by_coverage() {
        let (kg, index, _) = build();
        let cryptox = kg.instance_by_name("CryptoX").unwrap();
        let peers = peer_entities(&index, &kg, cryptox, 10);
        let labels: Vec<&str> = peers.iter().map(|&(v, _)| kg.instance_label(v)).collect();
        // FTX and Binance each appear in one article; CryptoX itself and
        // the uncovered DBS are excluded.
        assert_eq!(labels.len(), 2);
        assert!(labels.contains(&"FTX") && labels.contains(&"Binance"));
        for &(_, df) in &peers {
            assert_eq!(df, 1);
        }
    }

    #[test]
    fn peers_empty_for_conceptless_entity() {
        let (kg, index, _) = build();
        let fraudless = kg.instance_by_name("strike").unwrap();
        // strike HAS a concept (Labor Dispute) but no peers with coverage
        // besides itself → empty.
        let peers = peer_entities(&index, &kg, fraudless, 10);
        assert!(peers.is_empty());
    }
}
