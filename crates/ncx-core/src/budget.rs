//! Per-query time budgets and runtime deadlines.
//!
//! [`QueryBudget`] is the *configuration* side: an optional wall-clock
//! limit plus a check cadence, carried in
//! [`NcxConfig`](crate::config::NcxConfig) so every layer — the serving
//! multiplexer's admission queue, the roll-up/drill-down operators, and
//! the anytime walk estimator — agrees on one budget. [`Deadline`] is
//! the *runtime* side: a started clock against a limit, created once at
//! admission and threaded by reference through the query.
//!
//! # Where deadlines are checked
//!
//! Checks are cooperative and cadence-bounded, never preemptive:
//!
//! * the admission queue re-checks while a query waits for a slot;
//! * roll-up checks between via-group absorbs, every
//!   [`check_every`](QueryBudget::check_every) postings on the
//!   sequential fold, and around each parallel dispatch;
//! * drill-down checks every `check_every` documents per sweep and
//!   around each parallel dispatch;
//! * the walk estimator (when explicitly given a deadline) checks at
//!   its [`WalkBudget`](crate::config::WalkBudget) cadence.
//!
//! So a query can overshoot its deadline by at most one check interval
//! of work — the contract `tests/serve.rs` pins down. Results computed
//! *without* a deadline (or with one that never fires) are bit-for-bit
//! identical to the pre-budget engine: the checks only decide whether to
//! keep going, never what is computed.

use crate::error::QueryError;
use std::time::{Duration, Instant};

/// Configured time budget for a single query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryBudget {
    /// Wall-clock limit per query; `None` disables deadline enforcement
    /// (the default — batch and experiment workloads run unbounded).
    pub time_limit: Option<Duration>,
    /// Deadline-check cadence, in work items (postings absorbed,
    /// documents swept), on the sequential execution paths. Must be
    /// ≥ 1. Smaller values bound overshoot more tightly; larger values
    /// keep `Instant::now` off the hot loop.
    pub check_every: u32,
}

impl QueryBudget {
    /// No time limit (checks compile to nothing on the query path).
    pub const fn unlimited() -> Self {
        Self {
            time_limit: None,
            check_every: 256,
        }
    }

    /// A budget with the given wall-clock limit and the default cadence.
    pub fn with_limit(limit: Duration) -> Self {
        Self {
            time_limit: Some(limit),
            ..Self::unlimited()
        }
    }

    /// Starts the clock: a [`Deadline`] for one query under this budget,
    /// or `None` when the budget is unlimited.
    pub fn start(&self) -> Option<Deadline> {
        self.time_limit.map(Deadline::after)
    }
}

impl Default for QueryBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// A started wall-clock deadline: `start + limit`.
///
/// Plain `Copy` data — create one at admission, pass `Option<&Deadline>`
/// down the query path.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    start: Instant,
    limit: Duration,
}

impl Deadline {
    /// A deadline `limit` from now.
    pub fn after(limit: Duration) -> Self {
        Self {
            start: Instant::now(),
            limit,
        }
    }

    /// The configured limit.
    pub fn limit(&self) -> Duration {
        self.limit
    }

    /// Wall time since the deadline started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.elapsed() > self.limit
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.limit.saturating_sub(self.elapsed())
    }

    /// The typed rejection for this deadline, stamped with the elapsed
    /// time at the moment of the call.
    pub fn exceeded(&self) -> QueryError {
        QueryError::DeadlineExceeded {
            elapsed: self.elapsed(),
            limit: self.limit,
        }
    }

    /// `Err` iff the deadline has passed — the one-line check the query
    /// operators use between work chunks.
    #[inline]
    pub fn check(&self) -> Result<(), QueryError> {
        if self.expired() {
            Err(self.exceeded())
        } else {
            Ok(())
        }
    }
}

/// [`Deadline::check`] lifted over the `Option` the operators carry:
/// no deadline, no check, no clock read.
#[inline]
pub fn check_deadline(deadline: Option<&Deadline>) -> Result<(), QueryError> {
    match deadline {
        Some(d) => d.check(),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_starts_a_clock() {
        let b = QueryBudget::unlimited();
        assert!(b.time_limit.is_none());
        assert!(b.start().is_none());
        assert!(check_deadline(None).is_ok());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        assert!(matches!(
            d.check(),
            Err(QueryError::DeadlineExceeded { .. })
        ));
        match d.exceeded() {
            QueryError::DeadlineExceeded { limit, .. } => assert_eq!(limit, Duration::ZERO),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn generous_deadline_does_not_expire() {
        let b = QueryBudget::with_limit(Duration::from_secs(3600));
        let d = b.start().unwrap();
        assert!(!d.expired());
        assert!(d.check().is_ok());
        assert!(check_deadline(Some(&d)).is_ok());
        assert!(d.remaining() > Duration::from_secs(3500));
        assert_eq!(d.limit(), Duration::from_secs(3600));
    }
}
