//! Persistent worker pool with batch-level load balancing.
//!
//! # Why a persistent pool
//!
//! Earlier revisions spawned `std::thread::scope` threads per parallel
//! region. A thread spawn costs ~10 µs, which forced work floors
//! (`PAR_MIN_*` in `rollup`/`drilldown`) that kept small queries
//! sequential — exactly the interactive-latency regime NCExplorer
//! targets. This module instead keeps **long-lived parked workers**:
//! dispatching a region costs one lock acquisition and a condvar wake
//! (~1 µs), so the floors can sit an order of magnitude lower and the
//! pool is cheap enough to be the default execution substrate.
//!
//! # Lifecycle
//!
//! * [`Pool::new`]`(width)` spawns `width − 1` workers (the submitting
//!   thread is always the `width`-th participant) which immediately park
//!   on a condvar. A `width` of 0 or 1 spawns no threads at all.
//! * [`Pool::run_batched`] publishes a **job** — a type-erased,
//!   batch-draining closure — to the shared injector, wakes the workers,
//!   and participates itself. Idle workers join any published job (up to
//!   its width cap), pulling batches of consecutive indices from the
//!   job's atomic cursor, so skewed items cannot strand workers behind a
//!   static partition. Multiple jobs may be in flight at once: concurrent
//!   callers (`NcExplorer` queries take `&self`) share the same workers.
//! * Dropping the pool sets a shutdown flag, wakes every parked worker,
//!   and joins them. `Drop` requires `&mut self`, so no job can still be
//!   running.
//!
//! # Determinism contract
//!
//! `f` is called once per index `0..n` and results are returned **in
//! index order**, whatever the scheduling. Callers whose per-item
//! computation is itself deterministic (for example walk scoring seeded
//! by [`pair_seed`](crate::relevance::estimator::pair_seed)) therefore
//! get schedule-independent output. A `width` of 1 runs the literal
//! sequential loop on the calling thread — bit-for-bit the reference
//! path, no pool machinery involved.
//!
//! # Panics
//!
//! If `f` panics on a worker, the **original payload** is captured,
//! remaining batches are abandoned, and the payload is re-raised on the
//! submitting thread via [`std::panic::resume_unwind`] — a failing
//! assertion inside a parallel region surfaces to the caller with its
//! message intact. Workers survive job panics; the pool stays usable.

// The pool hands long-lived workers type-erased pointers to job state
// living on the submitting caller's stack. That lifetime erasure cannot
// be expressed in safe Rust (`std::thread::scope` is the only safe
// alternative, and per-region spawning is exactly what this module
// replaces), so the workspace-wide `unsafe_code = "deny"` is relaxed for
// this module only. The safety protocol is documented on [`Job`].
#![allow(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A reasonable batch size for `n` items over `workers` workers: small
/// enough to balance skew (several batches per worker), large enough to
/// amortise the cursor traffic.
pub fn auto_batch(n: usize, workers: usize) -> usize {
    if n == 0 || workers <= 1 {
        return n.max(1);
    }
    (n / (workers * 8)).clamp(1, 64)
}

/// One published parallel region: a type-erased handle to the concrete
/// job closure in the submitting `run_batched` frame.
///
/// # Safety protocol
///
/// `data` points into the stack frame of the `run_batched` call that
/// published the job, so it is only valid while that call is blocked.
/// Validity is guaranteed by a rendezvous:
///
/// 1. workers may only discover a job through the injector list, and
///    they increment `running` **under the pool lock** before invoking
///    `call`;
/// 2. before returning, the submitter delists the job **under the same
///    lock** — after which no new worker can discover it — and then
///    blocks until `running == 0`, i.e. until every worker that did
///    discover it has returned from `call`.
///
/// Hence no worker can dereference `data` after `run_batched` returns.
struct Job {
    /// Erased pointer to the concrete job closure.
    data: *const (),
    /// Monomorphised shim that invokes the closure behind `data` once.
    /// Each invocation drains the job's batch cursor until exhausted and
    /// never unwinds (panics are captured inside the closure).
    call: unsafe fn(*const ()),
    /// Workers currently inside `call` (the submitter is not counted).
    running: AtomicUsize,
    /// Workers that have ever joined, for the `cap` check. Monotone:
    /// a worker only leaves `call` when the job is exhausted, so
    /// re-joining is never useful.
    joined: AtomicUsize,
    /// Maximum number of pool workers allowed to join (the configured
    /// width minus the submitter).
    cap: usize,
}

// SAFETY: `data` is only dereferenced through `call` while the
// publishing `run_batched` frame is alive — see the protocol above. The
// closure it points to is `Sync` (enforced by the `shim` constructor),
// so concurrent invocation from several workers is sound.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

/// Returns the erased caller for a concrete job-closure type. Keeping
/// the generic here (rather than naming the closure type, which is
/// impossible) lets `run_batched` build the shim by inference.
fn shim<B: Fn() + Sync>(_: &B) -> unsafe fn(*const ()) {
    unsafe fn call<B: Fn() + Sync>(data: *const ()) {
        // SAFETY: `data` was produced from an `&B` by `run_batched` and
        // per the `Job` protocol the referent is still alive.
        unsafe { (*data.cast::<B>())() }
    }
    call::<B>
}

/// Injector state behind the pool mutex.
struct State {
    /// Published jobs that may still accept workers.
    jobs: Vec<Arc<Job>>,
    /// Set once by `Drop`; parked workers exit when they observe it.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here waiting for published jobs (or shutdown).
    work: Condvar,
    /// Submitters park here waiting for their job's workers to drain.
    done: Condvar,
}

/// The persistent worker pool. See the module docs for lifecycle,
/// determinism, and panic semantics.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    width: usize,
}

impl Pool {
    /// Creates a pool of the given width: `width − 1` parked worker
    /// threads plus the submitting caller. A width of 0 is clamped to 1
    /// (a zero knob must not disable execution); widths of 0 and 1 spawn
    /// no threads and make [`run_batched`](Self::run_batched) a plain
    /// sequential loop.
    pub fn new(width: usize) -> Self {
        let width = width.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: Vec::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..width)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("ncx-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers,
            width,
        }
    }

    /// The configured width (submitter included); always ≥ 1.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Runs `f(i)` for every `i in 0..n`, dispatching batches of `batch`
    /// consecutive indices from a shared cursor to at most `width`
    /// participants (clamped to the pool width; the submitting thread
    /// always participates), and returns the results in index order.
    ///
    /// With an effective width of 1 — or a single batch — this
    /// degenerates to a plain sequential loop on the calling thread, so
    /// a single-worker configuration reproduces the sequential path
    /// exactly. If `f` panics, the first panic payload is re-raised on
    /// the calling thread unchanged.
    pub fn run_batched<T, F>(&self, n: usize, width: usize, batch: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let width = width.clamp(1, self.width).min(n);
        let batch = batch.max(1);
        let num_batches = n.div_ceil(batch);
        if width == 1 || num_batches == 1 {
            return (0..n).map(f).collect();
        }

        let cursor = AtomicUsize::new(0);
        type Parts<T> = Mutex<Vec<(usize, Vec<T>)>>;
        let parts: Parts<T> = Mutex::new(Vec::new());
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        // Drains the batch cursor; run concurrently by the submitter and
        // every joined worker.
        let drain = || {
            let mut local: Vec<(usize, Vec<T>)> = Vec::new();
            loop {
                let b = cursor.fetch_add(1, Ordering::Relaxed);
                if b >= num_batches {
                    break;
                }
                let start = b * batch;
                let end = (start + batch).min(n);
                let mut items = Vec::with_capacity(end - start);
                for i in start..end {
                    items.push(f(i));
                }
                local.push((b, items));
            }
            if !local.is_empty() {
                parts.lock().expect("pool parts lock").extend(local);
            }
        };
        let body = || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(&drain)) {
                let mut slot = panic_slot.lock().expect("pool panic lock");
                if slot.is_none() {
                    *slot = Some(payload);
                }
                // Abandon remaining batches so other participants stop
                // promptly; batches already claimed still complete.
                cursor.store(num_batches, Ordering::Relaxed);
            }
        };

        // The submitter takes one slot; never involve more workers than
        // there are batches to steal.
        let cap = (width - 1).min(num_batches - 1);
        let job = Arc::new(Job {
            data: std::ptr::from_ref(&body).cast::<()>(),
            call: shim(&body),
            running: AtomicUsize::new(0),
            joined: AtomicUsize::new(0),
            cap,
        });
        {
            let mut st = self.shared.state.lock().expect("pool state lock");
            st.jobs.push(job.clone());
        }
        // Wake only as many parked workers as the job admits — a blanket
        // notify_all would stampede every worker of a wide pool through
        // the state mutex just to find `joined >= cap` and re-park. A
        // notification with no parked waiter is simply dropped; busy
        // workers rescan the injector anyway when their current job ends.
        for _ in 0..cap {
            self.shared.work.notify_one();
        }

        // Participate: the submitter is always the first worker, so a
        // busy pool degrades to (at worst) the sequential path instead
        // of deadlocking — which also makes nested submission safe.
        body();

        // Retire: delist under the lock (no new worker can join), then
        // wait until every joined worker has left the job body.
        let mut st = self.shared.state.lock().expect("pool state lock");
        st.jobs.retain(|j| !Arc::ptr_eq(j, &job));
        while job.running.load(Ordering::Acquire) > 0 {
            st = self.shared.done.wait(st).expect("pool done wait");
        }
        drop(st);

        if let Some(payload) = panic_slot.lock().expect("pool panic lock").take() {
            resume_unwind(payload);
        }
        let mut parts = parts.into_inner().expect("pool parts lock");
        parts.sort_unstable_by_key(|&(b, _)| b);
        let mut out = Vec::with_capacity(n);
        for (_, items) in parts {
            out.extend(items);
        }
        debug_assert_eq!(out.len(), n, "every index must be produced once");
        out
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.state.lock().expect("pool state lock").shutdown = true;
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("width", &self.width).finish()
    }
}

/// What a parked worker runs: wait for a joinable job, drain it, delist
/// it when exhausted, repeat until shutdown.
fn worker_loop(shared: &Shared) {
    let mut st = shared.state.lock().expect("pool state lock");
    loop {
        if st.shutdown {
            return;
        }
        let job = st
            .jobs
            .iter()
            .find(|j| j.joined.load(Ordering::Relaxed) < j.cap)
            .cloned();
        match job {
            Some(job) => {
                // Both counters move under the pool lock, paired with the
                // submitter's delist-then-check — see `Job`'s protocol.
                job.joined.fetch_add(1, Ordering::Relaxed);
                job.running.fetch_add(1, Ordering::Relaxed);
                drop(st);
                // SAFETY: `running` was incremented under the lock before
                // the submitter could delist, so the job frame is pinned
                // until the decrement below.
                unsafe { (job.call)(job.data) };
                st = shared.state.lock().expect("pool state lock");
                // `call` only returns once the cursor is exhausted, so no
                // later worker can make progress on this job: delist it.
                st.jobs.retain(|j| !Arc::ptr_eq(j, &job));
                if job.running.fetch_sub(1, Ordering::Release) == 1 {
                    shared.done.notify_all();
                }
            }
            None => st = shared.work.wait(st).expect("pool work wait"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_in_index_order() {
        for width in [1, 2, 3, 8] {
            let pool = Pool::new(width);
            for batch in [1, 3, 7, 100] {
                let out = pool.run_batched(23, width, batch, |i| i * i);
                let expect: Vec<usize> = (0..23).map(|i| i * i).collect();
                assert_eq!(out, expect, "width={width} batch={batch}");
            }
        }
    }

    #[test]
    fn every_index_called_exactly_once() {
        let pool = Pool::new(4);
        let calls = AtomicU64::new(0);
        let out = pool.run_batched(1000, 4, 8, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = Pool::new(4);
        assert!(pool.run_batched(0, 4, 8, |i| i).is_empty());
        assert_eq!(pool.run_batched(1, 4, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn zero_width_clamps_to_sequential() {
        // A zero knob must neither divide by zero in batch math nor
        // disable execution (regression: `Parallelism::Fixed(0)`).
        let pool = Pool::new(0);
        assert_eq!(pool.width(), 1);
        let out = pool.run_batched(10, 0, 0, |i| i * 2);
        assert_eq!(out, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(auto_batch(100, 0), 100);
    }

    #[test]
    fn width_caps_at_pool_width() {
        let pool = Pool::new(2);
        let out = pool.run_batched(100, 64, 4, |i| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn skewed_items_balance() {
        // One huge item among many small ones must not serialise the
        // rest behind it: with batch = 1 the huge item occupies one
        // worker while others drain the queue. (Correctness check only —
        // timing is not asserted.)
        let pool = Pool::new(4);
        let out = pool.run_batched(64, 4, 1, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_payload_reaches_caller_intact() {
        // Regression: joining with `.expect("worker panicked")` destroyed
        // the original payload; the caller must see the real message.
        let pool = Pool::new(4);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.run_batched(256, 4, 1, |i| {
                assert!(i != 97, "original assertion about item {i}");
                i
            })
        }))
        .expect_err("the panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("payload must stay a message");
        assert!(
            msg.contains("original assertion about item 97"),
            "payload lost: {msg}"
        );

        // The pool must stay usable after a job panicked.
        let out = pool.run_batched(100, 4, 4, |i| i + 1);
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let pool = Pool::new(4);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let pool = &pool;
                scope.spawn(move || {
                    for _ in 0..50 {
                        let out = pool.run_batched(97, 4, 2, |i| i + t);
                        assert_eq!(out, (t..97 + t).collect::<Vec<_>>());
                    }
                });
            }
        });
    }

    #[test]
    fn nested_submission_does_not_deadlock() {
        let pool = Pool::new(3);
        let out = pool.run_batched(6, 3, 1, |i| {
            // Inner regions run on the same pool; the submitter always
            // participates, so this completes even with all workers busy.
            pool.run_batched(5, 3, 1, |j| j).len() + i
        });
        assert_eq!(out, (5..11).collect::<Vec<_>>());
    }

    #[test]
    fn drop_shuts_down_promptly() {
        for _ in 0..50 {
            let pool = Pool::new(4);
            let out = pool.run_batched(32, 4, 1, |i| i);
            assert_eq!(out.len(), 32);
            drop(pool);
        }
    }

    #[test]
    fn auto_batch_bounds() {
        assert_eq!(auto_batch(0, 4), 1);
        assert_eq!(auto_batch(100, 1), 100);
        assert_eq!(auto_batch(7, 4), 1);
        assert_eq!(auto_batch(10_000, 4), 64);
        assert!(auto_batch(1_000_000, 8) <= 64);
    }
}
