//! Scoped worker pool with batch-level load balancing.
//!
//! The indexer's original idiom — `std::thread::scope` over contiguous
//! chunks — assigns each worker a fixed slice of the work up front. That
//! is optimal when items cost the same, but document lengths and
//! candidate-concept lists are heavily skewed: one long article (or one
//! broad concept with thousands of postings) can leave every other
//! worker idle. This module keeps the scoped-thread idiom but hands out
//! work in **small batches from a shared atomic cursor**, so fast
//! workers steal the tail of the queue instead of waiting.
//!
//! Determinism contract: `f` is called once per index `0..n` and results
//! are returned **in index order**, whatever the scheduling. Callers
//! whose per-item computation is itself deterministic (for example
//! walk scoring seeded by
//! [`pair_seed`](crate::relevance::estimator::pair_seed)) therefore get
//! schedule-independent output.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A reasonable batch size for `n` items over `workers` workers: small
/// enough to balance skew (several batches per worker), large enough to
/// amortise the cursor traffic.
pub fn auto_batch(n: usize, workers: usize) -> usize {
    if n == 0 || workers <= 1 {
        return n.max(1);
    }
    (n / (workers * 8)).clamp(1, 64)
}

/// Runs `f(i)` for every `i in 0..n` over `workers` scoped threads,
/// dispatching batches of `batch` consecutive indices from a shared
/// cursor, and returns the results in index order.
///
/// With `workers <= 1` (or `n <= 1`) this degenerates to a plain
/// sequential loop on the calling thread — no threads are spawned, so a
/// single-worker configuration reproduces the sequential path exactly.
pub fn run_batched<T, F>(n: usize, workers: usize, batch: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let batch = batch.max(1);
    let num_batches = n.div_ceil(batch);
    let cursor = AtomicUsize::new(0);
    let mut parts: Vec<(usize, Vec<T>)> = std::thread::scope(|scope| {
        let cursor = &cursor;
        let f = &f;
        let mut handles = Vec::with_capacity(workers.min(num_batches));
        for _ in 0..workers.min(num_batches) {
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let b = cursor.fetch_add(1, Ordering::Relaxed);
                    if b >= num_batches {
                        break;
                    }
                    let start = b * batch;
                    let end = (start + batch).min(n);
                    let mut items = Vec::with_capacity(end - start);
                    for i in start..end {
                        items.push(f(i));
                    }
                    local.push((b, items));
                }
                local
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    parts.sort_unstable_by_key(|&(b, _)| b);
    let mut out = Vec::with_capacity(n);
    for (_, items) in parts {
        out.extend(items);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_in_index_order() {
        for workers in [1, 2, 3, 8] {
            for batch in [1, 3, 7, 100] {
                let out = run_batched(23, workers, batch, |i| i * i);
                let expect: Vec<usize> = (0..23).map(|i| i * i).collect();
                assert_eq!(out, expect, "workers={workers} batch={batch}");
            }
        }
    }

    #[test]
    fn every_index_called_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = run_batched(1000, 4, 8, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(run_batched(0, 4, 8, |i| i).is_empty());
        assert_eq!(run_batched(1, 4, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn skewed_items_balance() {
        // One huge item among many small ones must not serialise the
        // rest behind it: with batch = 1 the huge item occupies one
        // worker while others drain the queue. (Correctness check only —
        // timing is not asserted.)
        let out = run_batched(64, 4, 1, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn auto_batch_bounds() {
        assert_eq!(auto_batch(0, 4), 1);
        assert_eq!(auto_batch(100, 1), 100);
        assert_eq!(auto_batch(7, 4), 1);
        assert_eq!(auto_batch(10_000, 4), 64);
        assert!(auto_batch(1_000_000, 8) <= 64);
    }
}
