//! Checksummed binary segment files and the zero-copy view over them.
//!
//! A segment is one self-validating file:
//!
//! ```text
//! ┌─────────────┬──────────┬──────────┬─────────────┬─────────┬──────────┐
//! │ magic (8 B) │ kind u16 │ rsvd u16 │ len u64 LE  │ payload │ fnv64 LE │
//! └─────────────┴──────────┴──────────┴─────────────┴─────────┴──────────┘
//! ```
//!
//! The trailing checksum covers header **and** payload, so a bit flip
//! anywhere in the file is caught even before the manifest cross-check.
//! `kind` is a small domain-assigned tag (concept shard, entity index,
//! …) letting readers refuse a swapped file with a precise error.
//!
//! [`SegView`] is the read path: a cursor over the payload slice that
//! hands out scalars, varints and sub-slices without copying. Decoders
//! built on it do no per-record allocation, which keeps the format ready
//! for `mmap`-backed buffers — only [`Segment`]'s buffer ownership would
//! change, none of the decoding.

use crate::checksum::fnv1a64;
use crate::error::{Result, StoreError};
use crate::varint;

/// Magic prefix of every segment file; the final byte is the container
/// layout version (bumped only if the header/trailer shape itself
/// changes — payload evolution is governed by the manifest version).
pub const SEGMENT_MAGIC: [u8; 8] = *b"NCXSEG\x00\x01";

const HEADER_LEN: usize = 8 + 2 + 2 + 8;
const TRAILER_LEN: usize = 8;

/// Builds one segment's payload and serialises it with header and
/// checksum. Purely in-memory; [`SnapshotWriter`](crate::SnapshotWriter)
/// handles file placement and manifest bookkeeping.
#[derive(Debug)]
pub struct SegmentWriter {
    kind: u16,
    payload: Vec<u8>,
}

impl SegmentWriter {
    /// Starts a segment of the given domain kind.
    pub fn new(kind: u16) -> Self {
        Self {
            kind,
            payload: Vec::new(),
        }
    }

    /// The domain kind tag.
    pub fn kind(&self) -> u16 {
        self.kind
    }

    /// Current payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is still empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.payload.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.payload.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.payload.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact little-endian bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.payload.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a LEB128 varint.
    pub fn put_varint(&mut self, v: u64) {
        varint::write_u64(&mut self.payload, v);
    }

    /// Appends raw bytes (caller frames the length).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.payload.extend_from_slice(bytes);
    }

    /// Appends a varint length followed by the bytes.
    pub fn put_len_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.put_bytes(bytes);
    }

    /// Appends a varint length followed by the string's UTF-8 bytes.
    pub fn put_len_str(&mut self, s: &str) {
        self.put_len_bytes(s.as_bytes());
    }

    /// Serialises the complete file image: header, payload, checksum.
    pub fn into_bytes(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len() + TRAILER_LEN);
        out.extend_from_slice(&SEGMENT_MAGIC);
        out.extend_from_slice(&self.kind.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }
}

/// One loaded, checksum-verified segment.
#[derive(Debug)]
pub struct Segment {
    name: String,
    kind: u16,
    /// The whole file image; the payload is `bytes[HEADER_LEN..len-8]`.
    bytes: Vec<u8>,
}

impl Segment {
    /// Validates and adopts a full file image. `name` is used only for
    /// error reporting (the file's name relative to the snapshot dir).
    pub fn from_bytes(name: impl Into<String>, bytes: Vec<u8>) -> Result<Self> {
        let name = name.into();
        if bytes.len() < HEADER_LEN + TRAILER_LEN {
            return Err(StoreError::Truncated {
                file: name,
                expected: (HEADER_LEN + TRAILER_LEN) as u64,
                actual: bytes.len() as u64,
            });
        }
        if bytes[..8] != SEGMENT_MAGIC {
            return Err(StoreError::corrupt(name, "bad segment magic"));
        }
        let kind = u16::from_le_bytes([bytes[8], bytes[9]]);
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        // Checked: `payload_len` is untrusted, and a value near u64::MAX
        // must be a typed error, not an overflow panic.
        let expected_len = payload_len
            .checked_add((HEADER_LEN + TRAILER_LEN) as u64)
            .ok_or_else(|| StoreError::corrupt(name.clone(), "payload length overflows u64"))?;
        if bytes.len() as u64 != expected_len {
            return Err(StoreError::Truncated {
                file: name,
                expected: expected_len,
                actual: bytes.len() as u64,
            });
        }
        let body_end = bytes.len() - TRAILER_LEN;
        let recorded = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
        if fnv1a64(&bytes[..body_end]) != recorded {
            return Err(StoreError::ChecksumMismatch { file: name });
        }
        Ok(Self { name, kind, bytes })
    }

    /// The file name this segment was loaded from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The domain kind tag recorded in the header.
    pub fn kind(&self) -> u16 {
        self.kind
    }

    /// The raw payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.bytes[HEADER_LEN..self.bytes.len() - TRAILER_LEN]
    }

    /// A zero-copy cursor over the payload.
    pub fn view(&self) -> SegView<'_> {
        SegView {
            file: &self.name,
            buf: self.payload(),
            pos: 0,
        }
    }
}

/// Zero-copy cursor over a segment payload. Every accessor either
/// returns borrowed data or a fixed-width scalar; running off the end of
/// the buffer is a typed [`StoreError::Truncated`], and malformed
/// variable-width data a [`StoreError::Corrupt`] — a snapshot reader
/// never panics on hostile bytes.
#[derive(Debug, Clone)]
pub struct SegView<'a> {
    file: &'a str,
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SegView<'a> {
    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn truncated(&self, need: usize) -> StoreError {
        StoreError::Truncated {
            file: self.file.to_string(),
            expected: (self.pos + need) as u64,
            actual: self.buf.len() as u64,
        }
    }

    /// Takes `n` raw bytes as a borrowed slice.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.truncated(n));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.get_bytes(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.get_bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.get_bytes(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` from its exact bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64> {
        match varint::read_u64(&self.buf[self.pos..]) {
            Some((v, used)) => {
                self.pos += used;
                Ok(v)
            }
            None if self.remaining() < 10 => Err(self.truncated(self.remaining() + 1)),
            None => Err(StoreError::corrupt(self.file, "overlong varint")),
        }
    }

    /// Reads a varint that must fit `usize`/`u32`-sized in-memory
    /// structures; values beyond `limit` are corruption by definition
    /// (they would ask the reader to allocate absurd capacity).
    pub fn get_count(&mut self, limit: u64) -> Result<usize> {
        let v = self.get_varint()?;
        if v > limit {
            return Err(StoreError::corrupt(
                self.file,
                format!("count {v} exceeds limit {limit}"),
            ));
        }
        Ok(v as usize)
    }

    /// Reads a varint-length-prefixed byte slice.
    pub fn get_len_bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.get_count(self.remaining() as u64)?;
        self.get_bytes(n)
    }

    /// Reads a varint-length-prefixed UTF-8 string slice.
    pub fn get_len_str(&mut self) -> Result<&'a str> {
        let file = self.file;
        let bytes = self.get_len_bytes()?;
        std::str::from_utf8(bytes).map_err(|e| StoreError::corrupt(file, format!("bad UTF-8: {e}")))
    }

    /// Asserts the payload is fully consumed (trailing garbage is
    /// corruption — a well-formed writer never leaves slack).
    pub fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(StoreError::corrupt(
                self.file,
                format!("{} trailing bytes after payload", self.remaining()),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SegmentWriter::new(7);
        w.put_u32(0xdead_beef);
        w.put_varint(300);
        w.put_f64(std::f64::consts::PI);
        w.put_len_str("héllo");
        w.into_bytes()
    }

    #[test]
    fn roundtrip_all_scalar_kinds() {
        let seg = Segment::from_bytes("t.seg", sample()).unwrap();
        assert_eq!(seg.kind(), 7);
        let mut v = seg.view();
        assert_eq!(v.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(v.get_varint().unwrap(), 300);
        assert_eq!(v.get_f64().unwrap(), std::f64::consts::PI);
        assert_eq!(v.get_len_str().unwrap(), "héllo");
        v.finish().unwrap();
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                Segment::from_bytes("t.seg", bad).is_err(),
                "flip at byte {i} went unnoticed"
            );
        }
    }

    #[test]
    fn truncation_at_every_length_is_detected() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let err = Segment::from_bytes("t.seg", bytes[..cut].to_vec()).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated { .. } | StoreError::ChecksumMismatch { .. }
                ),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected_by_finish() {
        let mut w = SegmentWriter::new(1);
        w.put_u32(1);
        w.put_u8(0);
        let seg = Segment::from_bytes("t.seg", w.into_bytes()).unwrap();
        let mut v = seg.view();
        v.get_u32().unwrap();
        assert!(matches!(v.finish(), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn view_reads_past_end_are_typed_errors() {
        let seg = Segment::from_bytes("t.seg", SegmentWriter::new(0).into_bytes()).unwrap();
        let mut v = seg.view();
        assert!(matches!(v.get_u32(), Err(StoreError::Truncated { .. })));
        assert!(matches!(
            v.clone().get_varint(),
            Err(StoreError::Truncated { .. })
        ));
        v.finish().unwrap();
    }

    #[test]
    fn absurd_counts_are_corruption_not_allocation() {
        let mut w = SegmentWriter::new(0);
        w.put_varint(u64::MAX / 2);
        let seg = Segment::from_bytes("t.seg", w.into_bytes()).unwrap();
        let mut v = seg.view();
        assert!(matches!(
            v.get_count(1 << 32),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn huge_declared_length_is_typed_error_not_overflow() {
        // A crafted header whose length field is near u64::MAX must be
        // refused, not panic on checked arithmetic (debug) or wrap
        // around to an accepted bogus header (release).
        for len in [u64::MAX, u64::MAX - 10, u64::MAX - 27] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&SEGMENT_MAGIC);
            bytes.extend_from_slice(&1u16.to_le_bytes());
            bytes.extend_from_slice(&0u16.to_le_bytes());
            bytes.extend_from_slice(&len.to_le_bytes());
            bytes.extend_from_slice(&[0u8; 16]);
            let err = Segment::from_bytes("h.seg", bytes).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Corrupt { .. } | StoreError::Truncated { .. }
                ),
                "len={len}: {err}"
            );
        }
    }

    #[test]
    fn empty_payload_is_valid() {
        let seg = Segment::from_bytes("e.seg", SegmentWriter::new(3).into_bytes()).unwrap();
        assert_eq!(seg.payload().len(), 0);
        seg.view().finish().unwrap();
    }
}
