//! FNV-1a 64-bit checksum.
//!
//! Chosen over CRC32 because it is trivially implementable without
//! tables or external crates (the build environment vendors every
//! dependency), has a 64-bit state that makes accidental collisions on
//! multi-megabyte segments negligible, and compiles to a tight
//! byte-at-a-time loop the optimiser vectorises acceptably. It is an
//! **integrity** check against bit rot and truncation, not a
//! cryptographic authenticator.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes`.
///
/// ```
/// use ncx_store::checksum::fnv1a64;
/// assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
/// assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn single_bit_flip_changes_hash() {
        let base = b"the quick brown fox".to_vec();
        let h = fnv1a64(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(fnv1a64(&flipped), h, "flip byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn truncation_changes_hash() {
        let base = b"0123456789abcdef";
        let h = fnv1a64(base);
        for cut in 0..base.len() {
            assert_ne!(fnv1a64(&base[..cut]), h);
        }
    }
}
