//! Typed snapshot errors.
//!
//! Every failure mode an operator can act on gets its own variant: a
//! checksum mismatch means "restore this file from a replica", a version
//! mismatch means "upgrade the reader", a truncated segment means "the
//! copy was interrupted". Stringly-typed `io::Error`s cannot carry that
//! distinction across the engine boundary.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Result alias for snapshot operations.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Why a snapshot could not be written or read.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure (permissions, disk full, …).
    Io {
        /// The path being read or written.
        path: PathBuf,
        /// The operating-system error.
        source: io::Error,
    },
    /// The directory does not contain a snapshot (no readable manifest,
    /// or the manifest does not start with the expected magic line).
    NotASnapshot {
        /// The directory that was probed.
        dir: PathBuf,
    },
    /// The snapshot was written by a newer (unsupported) format version.
    VersionMismatch {
        /// The version recorded in the manifest.
        found: u32,
        /// The newest version this reader understands.
        supported: u32,
    },
    /// A file's contents do not match its recorded checksum.
    ChecksumMismatch {
        /// The offending file (relative to the snapshot directory).
        file: String,
    },
    /// A file is shorter (or longer) than the manifest says it must be.
    Truncated {
        /// The offending file.
        file: String,
        /// Expected byte length per the manifest.
        expected: u64,
        /// Actual byte length on disk.
        actual: u64,
    },
    /// A file listed in the manifest is missing from the directory.
    MissingFile {
        /// The missing file.
        file: String,
    },
    /// A file decoded to structurally invalid data (bad magic, length
    /// fields pointing outside the buffer, invalid UTF-8, …).
    Corrupt {
        /// The offending file.
        file: String,
        /// What exactly failed to decode.
        detail: String,
    },
    /// The snapshot is internally valid but incompatible with the
    /// runtime it is being opened under (e.g. a different knowledge
    /// graph than the one the index was built against).
    Incompatible {
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

// The lazy-open path caches a decode failure once per shard and must
// surface it to every subsequent query, so the error needs to be
// duplicable. `io::Error` is not `Clone`; the `Io` variant clones by
// reconstructing an error with the same kind and message (the original
// OS error code is preserved only in the first instance).
impl Clone for StoreError {
    fn clone(&self) -> Self {
        match self {
            StoreError::Io { path, source } => StoreError::Io {
                path: path.clone(),
                source: io::Error::new(source.kind(), source.to_string()),
            },
            StoreError::NotASnapshot { dir } => StoreError::NotASnapshot { dir: dir.clone() },
            StoreError::VersionMismatch { found, supported } => StoreError::VersionMismatch {
                found: *found,
                supported: *supported,
            },
            StoreError::ChecksumMismatch { file } => {
                StoreError::ChecksumMismatch { file: file.clone() }
            }
            StoreError::Truncated {
                file,
                expected,
                actual,
            } => StoreError::Truncated {
                file: file.clone(),
                expected: *expected,
                actual: *actual,
            },
            StoreError::MissingFile { file } => StoreError::MissingFile { file: file.clone() },
            StoreError::Corrupt { file, detail } => StoreError::Corrupt {
                file: file.clone(),
                detail: detail.clone(),
            },
            StoreError::Incompatible { detail } => StoreError::Incompatible {
                detail: detail.clone(),
            },
        }
    }
}

impl StoreError {
    /// Convenience constructor for [`StoreError::Corrupt`].
    pub fn corrupt(file: impl Into<String>, detail: impl Into<String>) -> Self {
        StoreError::Corrupt {
            file: file.into(),
            detail: detail.into(),
        }
    }

    /// Wraps an [`io::Error`] with the path it occurred on. Missing
    /// manifest paths should use [`StoreError::NotASnapshot`] instead.
    pub fn io(path: impl Into<PathBuf>, source: io::Error) -> Self {
        StoreError::Io {
            path: path.into(),
            source,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "snapshot I/O error on {}: {source}", path.display())
            }
            StoreError::NotASnapshot { dir } => {
                write!(f, "{} is not an ncx-store snapshot", dir.display())
            }
            StoreError::VersionMismatch { found, supported } => write!(
                f,
                "snapshot format version {found} is newer than supported version {supported}"
            ),
            StoreError::ChecksumMismatch { file } => {
                write!(f, "checksum mismatch in snapshot file {file}")
            }
            StoreError::Truncated {
                file,
                expected,
                actual,
            } => write!(
                f,
                "snapshot file {file} truncated: expected {expected} bytes, found {actual}"
            ),
            StoreError::MissingFile { file } => {
                write!(f, "snapshot file {file} listed in manifest but missing")
            }
            StoreError::Corrupt { file, detail } => {
                write!(f, "snapshot file {file} corrupt: {detail}")
            }
            StoreError::Incompatible { detail } => {
                write!(f, "snapshot incompatible with this runtime: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_file() {
        let e = StoreError::ChecksumMismatch {
            file: "concepts-003.seg".into(),
        };
        assert!(e.to_string().contains("concepts-003.seg"));
        let e = StoreError::Truncated {
            file: "entities.seg".into(),
            expected: 100,
            actual: 40,
        };
        let s = e.to_string();
        assert!(s.contains("entities.seg") && s.contains("100") && s.contains("40"));
    }

    #[test]
    fn io_errors_chain_source() {
        let e = StoreError::io(
            "/tmp/x",
            io::Error::new(io::ErrorKind::PermissionDenied, "no"),
        );
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("/tmp/x"));
    }
}
