//! The snapshot manifest: `MANIFEST.ncx`.
//!
//! A deliberately **textual** format — one `key value…` pair per line —
//! so an operator can inspect a snapshot with `cat` and a foreign tool
//! can audit checksums without linking this crate. It records:
//!
//! * the **format version** (readers refuse anything newer than
//!   [`FORMAT_VERSION`] — the compatibility policy is "old readers never
//!   misparse new snapshots");
//! * the **shard count** of the concept-posting partition;
//! * the **generation stack** (format v2): one `generation <gen> <docs>`
//!   line per live layer, ascending, recording how many documents that
//!   layer added — the base snapshot is one generation, and every
//!   [`flush_delta`](https://docs.rs/) appends another;
//! * free-form named **stats** (corpus size, posting counts, KG
//!   fingerprint, build timings) as `stat <name> <u64>` lines;
//! * the **file table** — every segment's name, kind, owning generation,
//!   byte length and whole-file FNV-1a64 checksum — which doubles as the
//!   shard map (shard files carry their partition index in the name and
//!   their kind tag in the table). Generation membership lives **only**
//!   here: readers never discover layers by listing the directory, so a
//!   stray file left by a torn flush or a foreign writer is inert;
//! * a trailing checksum over the manifest's own bytes.
//!
//! The manifest is written **last** by the writer, so a crashed or
//! interrupted save never leaves a directory that opens successfully.
//! Format **v1** manifests (single implicit generation 0, four-column
//! file lines) still parse; v2 readers normalise them to a one-entry
//! generation stack.

use crate::checksum::fnv1a64;
use crate::error::{Result, StoreError};
use std::collections::BTreeMap;

/// Newest snapshot format this crate reads and the version it writes.
///
/// * **v1** — monolithic: one implicit generation, `file` lines carry
///   `name kind bytes checksum`.
/// * **v2** — layered: explicit `generation` lines, `file` lines carry
///   `name kind gen bytes checksum`.
pub const FORMAT_VERSION: u32 = 2;

/// File name of the manifest inside a snapshot directory.
pub const MANIFEST_NAME: &str = "MANIFEST.ncx";

const MAGIC_LINE: &str = "#ncx-store-manifest";

/// One segment file recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// File name relative to the snapshot directory.
    pub name: String,
    /// Domain kind tag (must match the segment header).
    pub kind: u16,
    /// Generation this file belongs to (0 for v1 manifests).
    pub gen: u32,
    /// Exact byte length of the file.
    pub bytes: u64,
    /// FNV-1a64 over the complete file contents.
    pub checksum: u64,
}

/// One layer of the generation stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenerationEntry {
    /// Generation number. Strictly ascending within a manifest; new
    /// layers always take `max + 1`, so numbers are never reused even
    /// after compaction drops old layers.
    pub gen: u32,
    /// Logical records (documents, for the NCX domain) this layer added
    /// on top of everything below it.
    pub docs: u64,
}

/// Parsed manifest contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Snapshot format version.
    pub format_version: u32,
    /// Number of concept-posting shards (identical for every generation).
    pub shards: u32,
    /// The generation stack, ascending. v1 manifests parse to a single
    /// entry `{gen: 0, docs: stat("num_docs")}`.
    pub generations: Vec<GenerationEntry>,
    /// Named statistics (corpus stats, KG fingerprint, timings). Stats
    /// always describe the **whole layered snapshot**, not one layer.
    pub stats: BTreeMap<String, u64>,
    /// The file table, in writer order.
    pub files: Vec<FileEntry>,
}

impl Manifest {
    /// Looks up a file entry by name.
    pub fn file(&self, name: &str) -> Option<&FileEntry> {
        self.files.iter().find(|f| f.name == name)
    }

    /// A stat by name.
    pub fn stat(&self, name: &str) -> Option<u64> {
        self.stats.get(name).copied()
    }

    /// Total payload bytes across every file in the table (segment
    /// bodies as recorded at write time; the manifest itself is not
    /// counted). Observability aid: exported as a gauge by the serving
    /// layer after each checkpoint.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.bytes).sum()
    }

    /// The highest live generation number.
    pub fn max_gen(&self) -> u32 {
        self.generations.iter().map(|g| g.gen).max().unwrap_or(0)
    }

    /// File entries belonging to one generation, in writer order.
    pub fn files_of_gen(&self, gen: u32) -> impl Iterator<Item = &FileEntry> {
        self.files.iter().filter(move |f| f.gen == gen)
    }

    /// Serialises the manifest, appending the self-checksum line.
    ///
    /// Writes the layout matching `self.format_version`, so a v1
    /// manifest round-trips byte-identically (generation info, which v1
    /// cannot express, must be the single implicit `{0, num_docs}`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = String::new();
        body.push_str(MAGIC_LINE);
        body.push('\n');
        body.push_str(&format!("format_version {}\n", self.format_version));
        body.push_str(&format!("shards {}\n", self.shards));
        if self.format_version >= 2 {
            for g in &self.generations {
                body.push_str(&format!("generation {} {}\n", g.gen, g.docs));
            }
        }
        for (k, v) in &self.stats {
            debug_assert!(!k.contains(char::is_whitespace), "stat key {k:?}");
            body.push_str(&format!("stat {k} {v}\n"));
        }
        for f in &self.files {
            debug_assert!(!f.name.contains(char::is_whitespace), "file {:?}", f.name);
            if self.format_version >= 2 {
                body.push_str(&format!(
                    "file {} {} {} {} {:016x}\n",
                    f.name, f.kind, f.gen, f.bytes, f.checksum
                ));
            } else {
                body.push_str(&format!(
                    "file {} {} {} {:016x}\n",
                    f.name, f.kind, f.bytes, f.checksum
                ));
            }
        }
        let mut out = body.into_bytes();
        let sum = fnv1a64(&out);
        out.extend_from_slice(format!("manifest_checksum {sum:016x}\n").as_bytes());
        out
    }

    /// Parses and integrity-checks manifest bytes.
    ///
    /// Order of checks matters for error quality: the magic line proves
    /// this *is* a manifest, the version gate runs **before** the
    /// self-checksum (a newer format may legitimately checksum
    /// differently — it must still be refused as a version mismatch,
    /// not misreported as corruption), then the checksum guards every
    /// remaining field.
    pub fn parse(bytes: &[u8]) -> Result<Self> {
        let file = MANIFEST_NAME;
        let text = std::str::from_utf8(bytes)
            .map_err(|e| StoreError::corrupt(file, format!("bad UTF-8: {e}")))?;
        let mut lines = text.lines();
        match lines.next() {
            Some(l) if l == MAGIC_LINE => {}
            _ => return Err(StoreError::corrupt(file, "missing manifest magic line")),
        }
        let version_line = lines
            .next()
            .ok_or_else(|| StoreError::corrupt(file, "missing format_version"))?;
        let format_version = match version_line.strip_prefix("format_version ") {
            Some(v) => v
                .trim()
                .parse::<u32>()
                .map_err(|e| StoreError::corrupt(file, format!("bad format_version: {e}")))?,
            None => return Err(StoreError::corrupt(file, "missing format_version")),
        };
        if format_version > FORMAT_VERSION {
            return Err(StoreError::VersionMismatch {
                found: format_version,
                supported: FORMAT_VERSION,
            });
        }

        // Self-checksum: the last line covers everything before it.
        let body_end = text
            .trim_end_matches('\n')
            .rfind('\n')
            .map(|i| i + 1)
            .ok_or_else(|| StoreError::corrupt(file, "manifest too short"))?;
        let last = text[body_end..].trim_end();
        let recorded = last
            .strip_prefix("manifest_checksum ")
            .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
            .ok_or_else(|| StoreError::corrupt(file, "missing manifest_checksum line"))?;
        if fnv1a64(&bytes[..body_end]) != recorded {
            return Err(StoreError::ChecksumMismatch { file: file.into() });
        }

        let mut shards = None;
        let mut generations: Vec<GenerationEntry> = Vec::new();
        let mut stats = BTreeMap::new();
        let mut files = Vec::new();
        for line in text[..body_end].lines().skip(2) {
            let mut parts = line.split_ascii_whitespace();
            match parts.next() {
                Some("shards") => {
                    let v = parts
                        .next()
                        .and_then(|v| v.parse::<u32>().ok())
                        .ok_or_else(|| StoreError::corrupt(file, "bad shards line"))?;
                    shards = Some(v);
                }
                Some("generation") if format_version >= 2 => {
                    let gen = parts.next().and_then(|v| v.parse::<u32>().ok());
                    let docs = parts.next().and_then(|v| v.parse::<u64>().ok());
                    match (gen, docs, parts.next()) {
                        (Some(gen), Some(docs), None) => {
                            generations.push(GenerationEntry { gen, docs });
                        }
                        _ => {
                            return Err(StoreError::corrupt(
                                file,
                                format!("bad generation line: {line}"),
                            ))
                        }
                    }
                }
                Some("stat") => {
                    let k = parts.next();
                    let v = parts.next().and_then(|v| v.parse::<u64>().ok());
                    match (k, v, parts.next()) {
                        (Some(k), Some(v), None) => {
                            stats.insert(k.to_string(), v);
                        }
                        _ => return Err(StoreError::corrupt(file, format!("bad stat: {line}"))),
                    }
                }
                Some("file") => {
                    let name = parts.next();
                    let kind = parts.next().and_then(|v| v.parse::<u16>().ok());
                    let gen = if format_version >= 2 {
                        parts.next().and_then(|v| v.parse::<u32>().ok())
                    } else {
                        Some(0)
                    };
                    let bytes = parts.next().and_then(|v| v.parse::<u64>().ok());
                    let checksum = parts.next().and_then(|h| u64::from_str_radix(h, 16).ok());
                    match (name, kind, gen, bytes, checksum, parts.next()) {
                        (Some(name), Some(kind), Some(gen), Some(bytes), Some(checksum), None) => {
                            files.push(FileEntry {
                                name: name.to_string(),
                                kind,
                                gen,
                                bytes,
                                checksum,
                            });
                        }
                        _ => {
                            return Err(StoreError::corrupt(
                                file,
                                format!("bad file entry: {line}"),
                            ))
                        }
                    }
                }
                Some(other) => {
                    // Same-version strictness: within a known format
                    // version every line kind is known; an unknown key
                    // means the bytes are not what the writer produced.
                    // (`generation` in a v1 manifest lands here too.)
                    return Err(StoreError::corrupt(
                        file,
                        format!("unknown manifest key: {other}"),
                    ));
                }
                None => {} // blank line
            }
        }
        let shards = shards.ok_or_else(|| StoreError::corrupt(file, "missing shards line"))?;
        if format_version >= 2 {
            if generations.is_empty() {
                return Err(StoreError::corrupt(file, "v2 manifest has no generations"));
            }
            if !generations.windows(2).all(|w| w[0].gen < w[1].gen) {
                return Err(StoreError::corrupt(
                    file,
                    "generation stack is not strictly ascending",
                ));
            }
            for f in &files {
                if !generations.iter().any(|g| g.gen == f.gen) {
                    return Err(StoreError::corrupt(
                        file,
                        format!("file {} names unknown generation {}", f.name, f.gen),
                    ));
                }
            }
        } else {
            // v1: one implicit base layer holding the whole corpus.
            generations = vec![GenerationEntry {
                gen: 0,
                docs: stats.get("num_docs").copied().unwrap_or(0),
            }];
        }
        Ok(Self {
            format_version,
            shards,
            generations,
            stats,
            files,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            format_version: FORMAT_VERSION,
            shards: 4,
            generations: vec![
                GenerationEntry { gen: 0, docs: 2900 },
                GenerationEntry { gen: 3, docs: 100 },
            ],
            stats: [("num_docs".to_string(), 3000), ("walks".to_string(), 12)]
                .into_iter()
                .collect(),
            files: vec![
                FileEntry {
                    name: "concepts-000.seg".into(),
                    kind: 1,
                    gen: 0,
                    bytes: 1234,
                    checksum: 0xdead_beef_0bad_cafe,
                },
                FileEntry {
                    name: "docstore-g003.seg".into(),
                    kind: 4,
                    gen: 3,
                    bytes: 99,
                    checksum: 7,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let parsed = Manifest::parse(&m.to_bytes()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.file("docstore-g003.seg").unwrap().bytes, 99);
        assert_eq!(parsed.stat("num_docs"), Some(3000));
        assert_eq!(parsed.stat("missing"), None);
        assert_eq!(parsed.max_gen(), 3);
        assert_eq!(parsed.files_of_gen(3).count(), 1);
    }

    #[test]
    fn v1_manifests_parse_with_an_implicit_generation() {
        // Byte layout produced by the v1 writer: no generation lines,
        // four-column file entries.
        let mut v1 = sample();
        v1.format_version = 1;
        v1.generations = vec![GenerationEntry { gen: 0, docs: 3000 }];
        for f in &mut v1.files {
            f.gen = 0;
        }
        let bytes = v1.to_bytes();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert!(
            !text.contains("generation"),
            "v1 layout must not carry generation lines: {text}"
        );
        let parsed = Manifest::parse(&bytes).unwrap();
        assert_eq!(parsed, v1, "v1 normalises to one implicit generation");
        assert_eq!(parsed.to_bytes(), bytes, "v1 round-trips byte-identically");
    }

    #[test]
    fn future_version_is_refused_even_with_alien_layout() {
        // A hypothetical v99 manifest whose body this version cannot
        // parse; the version gate must fire before anything else.
        let alien = format!("{MAGIC_LINE}\nformat_version 99\nhologram_index aa bb cc\n");
        let err = Manifest::parse(alien.as_bytes()).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::VersionMismatch {
                    found: 99,
                    supported: FORMAT_VERSION
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn byte_flips_are_checksum_mismatches() {
        let bytes = sample().to_bytes();
        // Flip a digit inside a file entry (not the magic/version header,
        // which has its own errors, and not whitespace).
        let pos = bytes
            .windows(4)
            .position(|w| w == b"1234")
            .expect("literal byte count present");
        let mut bad = bytes.clone();
        bad[pos] = b'9';
        let err = Manifest::parse(&bad).unwrap_err();
        assert!(matches!(err, StoreError::ChecksumMismatch { .. }), "{err}");
    }

    #[test]
    fn structural_garbage_is_corrupt() {
        assert!(matches!(
            Manifest::parse(b"not a manifest").unwrap_err(),
            StoreError::Corrupt { .. }
        ));
        assert!(matches!(
            Manifest::parse(format!("{MAGIC_LINE}\n").as_bytes()).unwrap_err(),
            StoreError::Corrupt { .. }
        ));
        assert!(matches!(
            Manifest::parse(&[0xff, 0xfe, MAGIC_LINE.as_bytes()[0]]).unwrap_err(),
            StoreError::Corrupt { .. }
        ));
    }

    #[test]
    fn unknown_keys_within_current_version_are_rejected() {
        let m = sample().to_bytes();
        // Splice an unknown line before the trailer, recomputing the
        // trailer so only the key (not the checksum) is at issue.
        let text = String::from_utf8(m).unwrap();
        let body = text
            .rsplit_once("manifest_checksum")
            .map(|(b, _)| b.to_string())
            .unwrap();
        let body = format!("{body}mystery_key 42\n");
        let sum = fnv1a64(body.as_bytes());
        let m = format!("{body}manifest_checksum {sum:016x}\n").into_bytes();
        let err = Manifest::parse(&m).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }

    /// Edits a serialised manifest and recomputes its self-checksum, so
    /// only the edited field is at issue.
    fn resign(bytes: &[u8], edit: impl FnOnce(&mut String)) -> Vec<u8> {
        let text = String::from_utf8(bytes.to_vec()).unwrap();
        let mut body = text
            .rsplit_once("manifest_checksum")
            .map(|(b, _)| b.to_string())
            .unwrap();
        edit(&mut body);
        let sum = fnv1a64(body.as_bytes());
        format!("{body}manifest_checksum {sum:016x}\n").into_bytes()
    }

    #[test]
    fn generation_lines_in_v1_are_unknown_keys() {
        let mut v1 = sample();
        v1.format_version = 1;
        v1.generations = vec![GenerationEntry { gen: 0, docs: 3000 }];
        for f in &mut v1.files {
            f.gen = 0;
        }
        let bad = resign(&v1.to_bytes(), |body| {
            *body = body.replace("shards 4\n", "shards 4\ngeneration 0 3000\n");
        });
        let err = Manifest::parse(&bad).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn v2_without_generations_is_corrupt() {
        let bad = resign(&sample().to_bytes(), |body| {
            *body = body
                .lines()
                .filter(|l| !l.starts_with("generation "))
                .map(|l| format!("{l}\n"))
                .collect();
        });
        let err = Manifest::parse(&bad).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn out_of_order_generations_are_corrupt() {
        let mut m = sample();
        m.generations.swap(0, 1);
        let err = Manifest::parse(&m.to_bytes()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn file_naming_a_dead_generation_is_corrupt() {
        // A file claiming generation 7 while the stack holds {0, 3}: the
        // signature of a torn compaction that lost its manifest update.
        let bad = resign(&sample().to_bytes(), |body| {
            *body = body.replace("file docstore-g003.seg 4 3 ", "file docstore-g003.seg 4 7 ");
        });
        let err = Manifest::parse(&bad).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }
}
