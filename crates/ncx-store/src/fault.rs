//! Crash-point injection for the snapshot write protocols.
//!
//! The layered-store crash-consistency contract ("every interrupted
//! flush or compaction leaves a directory that opens to exactly the
//! pre- or post-operation corpus") is only worth stating if it is
//! *executable*. This module makes it so: every filesystem mutation the
//! writers perform — segment write, rename, manifest write, manifest
//! rename, old-generation delete — first passes through the crate-level
//! `check` gate, and a
//! test can arm a budget of N successful operations after which the next
//! one fails with an injected `io::Error`. Because the writers propagate
//! errors without any cleanup, an injected failure leaves the directory
//! byte-for-byte as a process crash at that point would (minus OS-level
//! page-cache loss, which the manifest-rename commit point is designed
//! to tolerate anyway).
//!
//! The harness in `tests/crash.rs` sweeps `arm(0), arm(1), …` until the
//! protocol completes, asserting each intermediate directory opens to
//! one of the two adjacent states.
//!
//! State is process-global; tests that arm faults must serialise
//! themselves (the crash harness holds a mutex). Production code never
//! arms anything, and the disarmed fast path is a single relaxed atomic
//! load.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ARMED: AtomicBool = AtomicBool::new(false);
static FAIL_AFTER: AtomicU64 = AtomicU64::new(0);
static HIT: AtomicU64 = AtomicU64::new(0);

/// Arms fault injection: the next `allow` filesystem mutations succeed,
/// then every subsequent one fails with an injected I/O error until
/// [`disarm`] is called.
pub fn arm(allow: u64) {
    HIT.store(0, Ordering::SeqCst);
    FAIL_AFTER.store(allow, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms fault injection and returns how many fault points were
/// reached since [`arm`] (including the one that failed, if any).
pub fn disarm() -> u64 {
    ARMED.store(false, Ordering::SeqCst);
    HIT.load(Ordering::SeqCst)
}

/// The fault gate. Called by the snapshot writers immediately before
/// each filesystem mutation.
pub(crate) fn check(op: &str) -> io::Result<()> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    let n = HIT.fetch_add(1, Ordering::SeqCst);
    if n >= FAIL_AFTER.load(Ordering::SeqCst) {
        Err(io::Error::other(format!(
            "injected fault at {op} (op #{n})"
        )))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_gate_is_transparent() {
        assert!(check("noop").is_ok());
        assert!(check("noop").is_ok());
    }
}
