//! Snapshot directories: the writers and the cold-open reader.
//!
//! [`SnapshotWriter`] owns the **monolithic** save protocol: segments
//! are written first, the manifest **last** — so a crash mid-save leaves
//! a directory without a valid manifest, which [`Snapshot::open`]
//! refuses as [`StoreError::NotASnapshot`] instead of serving half an
//! index.
//!
//! [`GenerationWriter`] owns the **incremental** protocols — delta
//! flush (append a generation) and compaction (replace the stack with a
//! fresh base). Both must mutate a *live* snapshot without ever making
//! it unopenable, so they follow a stricter discipline than the
//! monolithic save:
//!
//! 1. every new segment is written to `<name>.tmp` and renamed into
//!    place — fresh generation numbers mean no final name is ever
//!    referenced by the current manifest;
//! 2. the new manifest is written to `MANIFEST.ncx.tmp`, fsynced, and
//!    `rename(2)`d over `MANIFEST.ncx` — the single atomic commit
//!    point;
//! 3. only **after** the rename does compaction delete superseded
//!    generation files (a crash between commit and cleanup leaves
//!    harmless strays, because generation membership comes solely from
//!    the manifest — see [`Snapshot::stray_files`]).
//!
//! A crash anywhere before step 2 leaves the old manifest — the
//! pre-operation corpus; anywhere after leaves the new one. Never a
//! hybrid. `tests/crash.rs` proves this by sweeping an injected fault
//! across every filesystem mutation (see [`crate::fault`]).
//!
//! [`Snapshot`] is the read side: it parses and integrity-checks the
//! manifest on open (cheap — no segment is touched), then loads segments
//! on demand with full verification: byte length against the manifest,
//! whole-file checksum against the manifest, the segment's own trailer
//! checksum, and the kind tag against the file table. [`Snapshot::verify`]
//! runs the same checks over every listed file for offline auditing.

use crate::checksum::fnv1a64;
use crate::error::{Result, StoreError};
use crate::fault;
use crate::manifest::{FileEntry, GenerationEntry, Manifest, FORMAT_VERSION, MANIFEST_NAME};
use crate::segment::{Segment, SegmentWriter};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Name of the manifest staging file used by the atomic-commit rename.
const MANIFEST_TMP: &str = "MANIFEST.ncx.tmp";

/// Fault-gated `std::fs::write`.
fn fs_write(path: &Path, bytes: &[u8]) -> Result<()> {
    fault::check("write")
        .and_then(|()| std::fs::write(path, bytes))
        .map_err(|e| StoreError::io(path, e))
}

/// Fault-gated write + fsync, for bytes that must be durable before a
/// subsequent rename commits them (the v2 manifest).
fn fs_write_sync(path: &Path, bytes: &[u8]) -> Result<()> {
    let run = || -> std::io::Result<()> {
        fault::check("write_sync")?;
        let mut f = std::fs::File::create(path)?;
        std::io::Write::write_all(&mut f, bytes)?;
        f.sync_all()
    };
    run().map_err(|e| StoreError::io(path, e))
}

/// Fault-gated `std::fs::rename`.
fn fs_rename(from: &Path, to: &Path) -> Result<()> {
    fault::check("rename")
        .and_then(|()| std::fs::rename(from, to))
        .map_err(|e| StoreError::io(from, e))
}

/// Fault-gated `std::fs::remove_file`; a file already gone is fine
/// (cleanup is idempotent across crash-retry cycles).
fn fs_remove_file(path: &Path) -> Result<()> {
    match fault::check("remove").and_then(|()| std::fs::remove_file(path)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(StoreError::io(path, e)),
    }
}

/// Deterministic shard assignment for a partition key (concept ids on
/// the write path). FNV-1a over the little-endian key bytes, reduced
/// modulo the shard count — stable across processes and platforms, so a
/// snapshot's shard map never depends on who wrote it.
///
/// ```
/// use ncx_store::shard_of;
/// assert_eq!(shard_of(42, 8), shard_of(42, 8));
/// assert!(shard_of(42, 8) < 8);
/// assert_eq!(shard_of(7, 1), 0);
/// ```
pub fn shard_of(key: u64, shards: u32) -> u32 {
    let shards = shards.max(1);
    (fnv1a64(&key.to_le_bytes()) % u64::from(shards)) as u32
}

/// Writes one snapshot directory. See the module docs for the protocol.
#[derive(Debug)]
pub struct SnapshotWriter {
    dir: PathBuf,
    shards: u32,
    docs: u64,
    stats: BTreeMap<String, u64>,
    files: Vec<FileEntry>,
}

impl SnapshotWriter {
    /// Creates (or reuses) the snapshot directory. Any stale manifest
    /// from a previous snapshot at the same path is removed up front, so
    /// the directory is never openable while this writer is mid-save —
    /// and so are stale `*.seg` files (a re-save with fewer shards must
    /// not leave orphan segments no manifest references) and `*.tmp`
    /// staging files from interrupted incremental writers.
    pub fn create(dir: impl AsRef<Path>, shards: u32) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, e))?;
        let manifest_path = dir.join(MANIFEST_NAME);
        if manifest_path.exists() {
            std::fs::remove_file(&manifest_path).map_err(|e| StoreError::io(&manifest_path, e))?;
        }
        for entry in std::fs::read_dir(&dir).map_err(|e| StoreError::io(&dir, e))? {
            let entry = entry.map_err(|e| StoreError::io(&dir, e))?;
            let path = entry.path();
            if path
                .extension()
                .is_some_and(|ext| ext == "seg" || ext == "tmp")
            {
                std::fs::remove_file(&path).map_err(|e| StoreError::io(&path, e))?;
            }
        }
        Ok(Self {
            dir,
            shards: shards.max(1),
            docs: 0,
            stats: BTreeMap::new(),
            files: Vec::new(),
        })
    }

    /// The configured shard count.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Records a named statistic for the manifest.
    pub fn set_stat(&mut self, name: impl Into<String>, value: u64) {
        self.stats.insert(name.into(), value);
    }

    /// Records how many logical records (documents) the snapshot holds —
    /// the `docs` figure of its single base generation.
    pub fn set_docs(&mut self, docs: u64) {
        self.docs = docs;
    }

    /// Serialises a segment to `<dir>/<name>` and records it in the file
    /// table. Names must be unique and whitespace-free.
    pub fn write_segment(&mut self, name: &str, segment: SegmentWriter) -> Result<()> {
        assert!(
            !name.contains(char::is_whitespace) && !name.is_empty(),
            "segment name {name:?} must be non-empty and whitespace-free"
        );
        assert!(
            self.files.iter().all(|f| f.name != name),
            "duplicate segment name {name:?}"
        );
        let kind = segment.kind();
        let bytes = segment.into_bytes();
        let path = self.dir.join(name);
        fs_write(&path, &bytes)?;
        self.files.push(FileEntry {
            name: name.to_string(),
            kind,
            gen: 0,
            bytes: bytes.len() as u64,
            checksum: fnv1a64(&bytes),
        });
        Ok(())
    }

    /// Writes the manifest, completing the snapshot. Only after this
    /// returns does the directory open as a valid snapshot.
    pub fn finish(self) -> Result<Manifest> {
        let manifest = Manifest {
            format_version: FORMAT_VERSION,
            shards: self.shards,
            generations: vec![GenerationEntry {
                gen: 0,
                docs: self.docs,
            }],
            stats: self.stats,
            files: self.files,
        };
        let path = self.dir.join(MANIFEST_NAME);
        fs_write(&path, &manifest.to_bytes())?;
        Ok(manifest)
    }
}

/// Whether a generation writer appends a layer or replaces the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GenMode {
    /// Delta flush: the new generation stacks on top of the existing
    /// ones; no existing file is touched.
    Append,
    /// Compaction: the new generation becomes the sole base; superseded
    /// generation files are deleted after the manifest commit.
    Replace,
}

/// Incremental writer over a **live** snapshot: appends a delta
/// generation ([`Snapshot::append_generation`]) or replaces the whole
/// stack with a compacted base ([`Snapshot::begin_compaction`]).
///
/// Unlike [`SnapshotWriter`], the directory stays openable at every
/// instant: new segments land under fresh generation-numbered names via
/// tmp-file + rename, and the updated manifest is committed by a single
/// atomic `rename(2)`. Dropping the writer without calling
/// [`finish`](Self::finish) aborts the operation — the old manifest
/// still governs and any staged files are inert strays.
#[derive(Debug)]
pub struct GenerationWriter {
    dir: PathBuf,
    base: Manifest,
    mode: GenMode,
    gen: u32,
    docs: u64,
    stats: BTreeMap<String, u64>,
    files: Vec<FileEntry>,
}

impl GenerationWriter {
    /// The generation number this writer is producing (`max live + 1` —
    /// numbers are never reused, so a torn compaction can never leave a
    /// stale file that aliases a live name).
    pub fn gen(&self) -> u32 {
        self.gen
    }

    /// The shard count every generation of this snapshot uses.
    pub fn shards(&self) -> u32 {
        self.base.shards
    }

    /// Records a named statistic. Stats describe the **whole** layered
    /// snapshot after this operation, not the one layer; they are seeded
    /// from the current manifest, so callers only override what changed.
    pub fn set_stat(&mut self, name: impl Into<String>, value: u64) {
        self.stats.insert(name.into(), value);
    }

    /// Stages one segment of the new generation: writes `<name>.tmp`,
    /// then renames it into place. The final name must be fresh — it is
    /// a protocol bug (panic) to overwrite a file the live manifest
    /// references.
    pub fn write_segment(&mut self, name: &str, segment: SegmentWriter) -> Result<()> {
        assert!(
            !name.contains(char::is_whitespace) && !name.is_empty(),
            "segment name {name:?} must be non-empty and whitespace-free"
        );
        assert!(
            self.files.iter().all(|f| f.name != name),
            "duplicate segment name {name:?}"
        );
        assert!(
            self.base.file(name).is_none(),
            "segment name {name:?} is referenced by the live manifest"
        );
        let kind = segment.kind();
        let bytes = segment.into_bytes();
        let tmp = self.dir.join(format!("{name}.tmp"));
        let path = self.dir.join(name);
        fs_write(&tmp, &bytes)?;
        fs_rename(&tmp, &path)?;
        self.files.push(FileEntry {
            name: name.to_string(),
            kind,
            gen: self.gen,
            bytes: bytes.len() as u64,
            checksum: fnv1a64(&bytes),
        });
        Ok(())
    }

    /// Commits the new generation: writes the updated manifest to a
    /// staging file, fsyncs it, and atomically renames it over
    /// `MANIFEST.ncx`. In replace mode, superseded generation files and
    /// stray `*.seg`/`*.tmp` files are deleted only **after** the rename
    /// returns — a crash during cleanup leaves extra bytes on disk, never
    /// a wrong answer.
    pub fn finish(self) -> Result<Manifest> {
        let entry = GenerationEntry {
            gen: self.gen,
            docs: self.docs,
        };
        let (generations, files) = match self.mode {
            GenMode::Append => {
                let mut generations = self.base.generations.clone();
                generations.push(entry);
                let mut files = self.base.files.clone();
                files.extend(self.files.iter().cloned());
                (generations, files)
            }
            GenMode::Replace => (vec![entry], self.files.clone()),
        };
        let manifest = Manifest {
            format_version: FORMAT_VERSION,
            shards: self.base.shards,
            generations,
            stats: self.stats,
            files,
        };
        let tmp = self.dir.join(MANIFEST_TMP);
        fs_write_sync(&tmp, &manifest.to_bytes())?;
        fs_rename(&tmp, &self.dir.join(MANIFEST_NAME))?;
        if self.mode == GenMode::Replace {
            // The new manifest is durable; everything it does not list
            // is garbage (old generations + strays from earlier crashes).
            for name in list_unreferenced(&self.dir, &manifest)? {
                fs_remove_file(&self.dir.join(&name))?;
            }
        }
        Ok(manifest)
    }
}

/// On-disk `*.seg` / `*.tmp` files a manifest does not reference,
/// sorted. Used for reporting ([`Snapshot::stray_files`]) and for
/// post-commit compaction cleanup — never for loading data.
fn list_unreferenced(dir: &Path, manifest: &Manifest) -> Result<Vec<String>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(|e| StoreError::io(dir, e))? {
        let entry = entry.map_err(|e| StoreError::io(dir, e))?;
        let path = entry.path();
        if !path
            .extension()
            .is_some_and(|ext| ext == "seg" || ext == "tmp")
        {
            continue;
        }
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if manifest.file(name).is_none() {
            out.push(name.to_string());
        }
    }
    out.sort();
    Ok(out)
}

/// An opened snapshot directory.
#[derive(Debug)]
pub struct Snapshot {
    dir: PathBuf,
    manifest: Manifest,
}

impl Snapshot {
    /// Opens a snapshot: reads and verifies the manifest (version gate,
    /// self-checksum). Segment files are not touched until
    /// [`read_segment`](Self::read_segment).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let manifest_path = dir.join(MANIFEST_NAME);
        let bytes = match std::fs::read(&manifest_path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::NotASnapshot { dir });
            }
            Err(e) => return Err(StoreError::io(&manifest_path, e)),
        };
        let manifest = Manifest::parse(&bytes)?;
        Ok(Self { dir, manifest })
    }

    /// The parsed manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The snapshot directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Loads and fully verifies one segment by file name.
    pub fn read_segment(&self, name: &str) -> Result<Segment> {
        let entry = self
            .manifest
            .file(name)
            .ok_or_else(|| StoreError::MissingFile { file: name.into() })?;
        let path = self.dir.join(name);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::MissingFile { file: name.into() });
            }
            Err(e) => return Err(StoreError::io(&path, e)),
        };
        if bytes.len() as u64 != entry.bytes {
            return Err(StoreError::Truncated {
                file: name.into(),
                expected: entry.bytes,
                actual: bytes.len() as u64,
            });
        }
        if fnv1a64(&bytes) != entry.checksum {
            return Err(StoreError::ChecksumMismatch { file: name.into() });
        }
        let segment = Segment::from_bytes(name, bytes)?;
        if segment.kind() != entry.kind {
            return Err(StoreError::corrupt(
                name,
                format!(
                    "segment kind {} does not match manifest kind {}",
                    segment.kind(),
                    entry.kind
                ),
            ));
        }
        Ok(segment)
    }

    /// Loads and fully verifies **every** segment the manifest lists,
    /// keyed by file name. One pass of disk I/O that a caller can then
    /// decode any number of times — the replica cold-open path reads the
    /// directory once and materialises N engines from the shared bytes.
    pub fn read_all_segments(&self) -> Result<BTreeMap<String, Segment>> {
        let mut out = BTreeMap::new();
        for f in &self.manifest.files {
            out.insert(f.name.clone(), self.read_segment(&f.name)?);
        }
        Ok(out)
    }

    /// Verifies every file listed in the manifest (lengths, checksums,
    /// headers) without decoding payloads.
    pub fn verify(&self) -> Result<()> {
        for f in &self.manifest.files {
            self.read_segment(&f.name)?;
        }
        Ok(())
    }

    /// Starts a **delta flush**: a [`GenerationWriter`] that appends one
    /// new generation holding `docs` records on top of the live stack.
    /// Existing files are untouched; the flush becomes visible only at
    /// [`GenerationWriter::finish`]. Flushing a v1 (monolithic) snapshot
    /// upgrades its manifest to v2 at commit time.
    pub fn append_generation(&self, docs: u64) -> Result<GenerationWriter> {
        self.generation_writer(GenMode::Append, docs)
    }

    /// Starts a **compaction**: a [`GenerationWriter`] that replaces the
    /// whole generation stack with a single fresh base of `docs`
    /// records. Old generation files are removed only after the new
    /// manifest is durable.
    pub fn begin_compaction(&self, docs: u64) -> Result<GenerationWriter> {
        self.generation_writer(GenMode::Replace, docs)
    }

    fn generation_writer(&self, mode: GenMode, docs: u64) -> Result<GenerationWriter> {
        let gen = self
            .manifest
            .max_gen()
            .checked_add(1)
            .ok_or_else(|| StoreError::corrupt(MANIFEST_NAME, "generation counter overflow"))?;
        Ok(GenerationWriter {
            dir: self.dir.clone(),
            base: self.manifest.clone(),
            mode,
            gen,
            docs,
            stats: self.manifest.stats.clone(),
            files: Vec::new(),
        })
    }

    /// `*.seg` / `*.tmp` files present in the directory but absent from
    /// the manifest — leftovers of interrupted flushes/compactions or
    /// foreign droppings. They are **never** read by any open path
    /// (generation membership comes solely from the manifest); this
    /// method exists so operators and the serving layer can report or
    /// sweep them. Compaction removes them as part of its cleanup.
    pub fn stray_files(&self) -> Result<Vec<String>> {
        list_unreferenced(&self.dir, &self.manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ncx_store_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_sample(dir: &Path) -> Manifest {
        let mut w = SnapshotWriter::create(dir, 4).unwrap();
        let mut seg = SegmentWriter::new(1);
        seg.put_varint(3);
        seg.put_len_str("abc");
        w.write_segment("a.seg", seg).unwrap();
        let mut seg = SegmentWriter::new(2);
        seg.put_u64(0x0123_4567_89ab_cdef);
        w.write_segment("b.seg", seg).unwrap();
        w.set_stat("num_docs", 17);
        w.set_docs(17);
        w.finish().unwrap()
    }

    #[test]
    fn write_open_verify_roundtrip() {
        let dir = temp_dir("roundtrip");
        let manifest = write_sample(&dir);
        assert_eq!(manifest.files.len(), 2);
        let snap = Snapshot::open(&dir).unwrap();
        assert_eq!(snap.manifest(), &manifest);
        snap.verify().unwrap();
        let seg = snap.read_segment("a.seg").unwrap();
        let mut v = seg.view();
        assert_eq!(v.get_varint().unwrap(), 3);
        assert_eq!(v.get_len_str().unwrap(), "abc");
        v.finish().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_all_segments_loads_every_listed_file() {
        let dir = temp_dir("readall");
        write_sample(&dir);
        let snap = Snapshot::open(&dir).unwrap();
        let all = snap.read_all_segments().unwrap();
        assert_eq!(
            all.keys().cloned().collect::<Vec<_>>(),
            vec!["a.seg".to_string(), "b.seg".to_string()]
        );
        assert_eq!(all["a.seg"].kind(), 1);
        assert_eq!(all["b.seg"].kind(), 2);
        // A missing file fails the whole batch (same checks as
        // read_segment, so corruption is never served).
        std::fs::remove_file(dir.join("b.seg")).unwrap();
        assert!(matches!(
            snap.read_all_segments().unwrap_err(),
            StoreError::MissingFile { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_not_a_snapshot() {
        let dir = temp_dir("nomanifest");
        assert!(matches!(
            Snapshot::open(&dir).unwrap_err(),
            StoreError::NotASnapshot { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_save_is_not_openable() {
        let dir = temp_dir("interrupted");
        write_sample(&dir);
        // A new writer over the same directory invalidates the old
        // manifest immediately; until finish(), opens must fail.
        let mut w = SnapshotWriter::create(&dir, 2).unwrap();
        let seg = SegmentWriter::new(9);
        w.write_segment("c.seg", seg).unwrap();
        assert!(matches!(
            Snapshot::open(&dir).unwrap_err(),
            StoreError::NotASnapshot { .. }
        ));
        w.finish().unwrap();
        Snapshot::open(&dir).unwrap().verify().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recreate_removes_stale_segments() {
        // Re-saving into the same directory with fewer segments must not
        // leave orphan .seg files no manifest references.
        let dir = temp_dir("restale");
        write_sample(&dir); // a.seg + b.seg
        let mut w = SnapshotWriter::create(&dir, 1).unwrap();
        assert!(!dir.join("a.seg").exists(), "stale a.seg survived");
        assert!(!dir.join("b.seg").exists(), "stale b.seg survived");
        w.write_segment("only.seg", SegmentWriter::new(5)).unwrap();
        w.finish().unwrap();
        let snap = Snapshot::open(&dir).unwrap();
        snap.verify().unwrap();
        let on_disk: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".seg"))
            .collect();
        assert_eq!(on_disk, vec!["only.seg".to_string()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deleted_segment_is_missing_file() {
        let dir = temp_dir("missing");
        write_sample(&dir);
        std::fs::remove_file(dir.join("b.seg")).unwrap();
        let snap = Snapshot::open(&dir).unwrap();
        assert!(matches!(
            snap.verify().unwrap_err(),
            StoreError::MissingFile { .. }
        ));
        assert!(matches!(
            snap.read_segment("nonexistent.seg").unwrap_err(),
            StoreError::MissingFile { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_segment_byte_is_checksum_mismatch() {
        let dir = temp_dir("flip");
        write_sample(&dir);
        let path = dir.join("a.seg");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, bytes).unwrap();
        let snap = Snapshot::open(&dir).unwrap();
        assert!(matches!(
            snap.read_segment("a.seg").unwrap_err(),
            StoreError::ChecksumMismatch { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_segment_is_typed() {
        let dir = temp_dir("trunc");
        write_sample(&dir);
        let path = dir.join("b.seg");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let snap = Snapshot::open(&dir).unwrap();
        assert!(matches!(
            snap.read_segment("b.seg").unwrap_err(),
            StoreError::Truncated { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn swapped_segment_files_are_refused() {
        // Swapping two validly-checksummed files must still fail: the
        // manifest pins length+checksum per *name*.
        let dir = temp_dir("swap");
        write_sample(&dir);
        let a = std::fs::read(dir.join("a.seg")).unwrap();
        let b = std::fs::read(dir.join("b.seg")).unwrap();
        std::fs::write(dir.join("a.seg"), &b).unwrap();
        std::fs::write(dir.join("b.seg"), &a).unwrap();
        let snap = Snapshot::open(&dir).unwrap();
        assert!(snap.read_segment("a.seg").is_err());
        assert!(snap.read_segment("b.seg").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_generation_stacks_without_touching_the_base() {
        let dir = temp_dir("gen_append");
        write_sample(&dir); // a.seg + b.seg, gen 0
        let base_a = std::fs::read(dir.join("a.seg")).unwrap();
        let snap = Snapshot::open(&dir).unwrap();
        let mut gw = snap.append_generation(5).unwrap();
        assert_eq!(gw.gen(), 1);
        assert_eq!(gw.shards(), 4);
        let mut seg = SegmentWriter::new(1);
        seg.put_varint(7);
        gw.write_segment("a-g001.seg", seg).unwrap();
        gw.set_stat("num_docs", 22);
        gw.finish().unwrap();

        let snap = Snapshot::open(&dir).unwrap();
        snap.verify().unwrap();
        let m = snap.manifest();
        assert_eq!(m.format_version, FORMAT_VERSION);
        assert_eq!(
            m.generations,
            vec![
                GenerationEntry { gen: 0, docs: 17 },
                GenerationEntry { gen: 1, docs: 5 },
            ]
        );
        assert_eq!(m.stat("num_docs"), Some(22), "stats overridden");
        assert_eq!(m.files_of_gen(1).count(), 1);
        assert_eq!(
            std::fs::read(dir.join("a.seg")).unwrap(),
            base_a,
            "delta flush must not rewrite base segments"
        );
        assert!(snap.stray_files().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn abandoned_generation_writer_leaves_the_old_manifest_governing() {
        let dir = temp_dir("gen_abandon");
        let base = write_sample(&dir);
        let snap = Snapshot::open(&dir).unwrap();
        let mut gw = snap.append_generation(3).unwrap();
        gw.write_segment("orphan-g001.seg", SegmentWriter::new(1))
            .unwrap();
        drop(gw); // no finish(): simulated abort
        let snap = Snapshot::open(&dir).unwrap();
        assert_eq!(snap.manifest(), &base);
        snap.verify().unwrap();
        assert_eq!(
            snap.stray_files().unwrap(),
            vec!["orphan-g001.seg".to_string()],
            "staged file is reported as a stray, never loaded"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_replaces_the_stack_and_sweeps_strays() {
        let dir = temp_dir("gen_compact");
        write_sample(&dir);
        let snap = Snapshot::open(&dir).unwrap();
        let mut gw = snap.append_generation(5).unwrap();
        gw.write_segment("a-g001.seg", SegmentWriter::new(1))
            .unwrap();
        gw.finish().unwrap();
        // A foreign stray and a torn tmp file, both to be swept.
        std::fs::write(dir.join("concepts-g999-000.seg"), b"junk").unwrap();
        std::fs::write(dir.join("half.seg.tmp"), b"junk").unwrap();

        let snap = Snapshot::open(&dir).unwrap();
        let mut cw = snap.begin_compaction(22).unwrap();
        assert_eq!(cw.gen(), 2, "compaction takes a fresh number");
        let mut seg = SegmentWriter::new(1);
        seg.put_varint(9);
        cw.write_segment("a-g002.seg", seg).unwrap();
        cw.set_stat("num_docs", 22);
        cw.finish().unwrap();

        let snap = Snapshot::open(&dir).unwrap();
        snap.verify().unwrap();
        let m = snap.manifest();
        assert_eq!(m.generations, vec![GenerationEntry { gen: 2, docs: 22 }]);
        assert_eq!(m.files.len(), 1);
        for gone in ["a.seg", "b.seg", "a-g001.seg", "concepts-g999-000.seg"] {
            assert!(!dir.join(gone).exists(), "{gone} should have been swept");
        }
        assert!(!dir.join("half.seg.tmp").exists());
        assert!(snap.stray_files().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_assignment_is_stable_and_bounded() {
        for key in 0..1000u64 {
            let s = shard_of(key, 8);
            assert!(s < 8);
            assert_eq!(s, shard_of(key, 8));
        }
        // All shards of a small partition get some keys (sanity that the
        // hash actually spreads).
        let mut seen = [false; 4];
        for key in 0..1000u64 {
            seen[shard_of(key, 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        assert_eq!(shard_of(123, 0), 0, "zero shards clamps to one");
    }
}
