//! LEB128 variable-width integers.
//!
//! Doc ids inside a posting list are stored as **deltas** from their
//! predecessor; deltas are small, so LEB128 encodes the common case in
//! one byte where a fixed `u32` would spend four. Scores stay
//! fixed-width `f64` (bit-exact round-trips are a format invariant), so
//! varints are only used where the value distribution earns it.

/// Appends `v` to `out` as LEB128 (7 bits per byte, high bit = more).
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a LEB128 integer from the front of `buf`, returning the value
/// and the number of bytes consumed, or `None` on truncation/overflow.
pub fn read_u64(buf: &[u8]) -> Option<(u64, usize)> {
    let mut v: u64 = 0;
    for (i, &byte) in buf.iter().enumerate().take(10) {
        let payload = u64::from(byte & 0x7f);
        // The 10th byte may only contribute the single remaining bit.
        if i == 9 && payload > 1 {
            return None;
        }
        v |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Some((v, i + 1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        let (got, used) = read_u64(&buf).expect("decodes");
        assert_eq!(got, v);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn edge_values_roundtrip() {
        for v in [
            0,
            1,
            127,
            128,
            255,
            300,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            roundtrip(v);
        }
    }

    #[test]
    fn encoding_is_minimal_for_small_values() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 5);
        assert_eq!(buf, vec![5]);
        buf.clear();
        write_u64(&mut buf, 200);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert!(read_u64(&buf[..cut]).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn overlong_encoding_is_rejected() {
        // 11 continuation bytes can never be a valid u64.
        let buf = [0x80u8; 11];
        assert!(read_u64(&buf).is_none());
        // A 10th byte carrying more than the final bit overflows.
        let mut buf = vec![0xff; 9];
        buf.push(0x7f);
        assert!(read_u64(&buf).is_none());
    }
}
