//! # ncx-store — persistent sharded snapshot format
//!
//! Every NCExplorer process used to rebuild the full index from the raw
//! corpus before serving a single query. This crate is the on-disk layer
//! that turns the expensive two-pass build into a one-time cost: a
//! snapshot is a **directory** holding a manifest plus checksummed binary
//! *segment* files, designed so a cold process can open and serve in
//! milliseconds.
//!
//! ```text
//! snapshot-dir/
//! ├── MANIFEST.ncx          text manifest: format version, corpus stats,
//! │                         generation stack, shard map, per-file
//! │                         checksums (written last / committed by
//! │                         atomic rename, so a crashed writer leaves
//! │                         no valid — or the previous valid — snapshot)
//! ├── concepts-000.seg      concept-posting shard 0   (hash-partitioned)
//! ├── …                     …
//! ├── concepts-NNN.seg      concept-posting shard N−1
//! ├── doclists.seg          per-document concept lists
//! ├── entities.seg          per-document entity bags → entity postings
//! ├── docstore.seg          the article store
//! ├── concepts-gGGG-SSS.seg delta generation GGG, shard SSS (appended by
//! ├── doclists-gGGG.seg     flush_delta; folded back into a single base
//! ├── entities-gGGG.seg     by compaction)
//! └── docstore-gGGG.seg
//! ```
//!
//! A snapshot is a **stack of generations**: a base plus zero or more
//! append-only deltas, replayed in ascending order on open. The manifest
//! alone defines which generations are live — stray files from torn
//! writes are inert. See [`snapshot`] for the crash-consistency
//! protocol and [`fault`] for the injection hooks that prove it.
//!
//! The crate is deliberately **domain-agnostic**: it knows about
//! segments, manifests, checksums and shard assignment, but not about
//! postings or articles. The encoding of each segment kind lives next to
//! the type it persists (`ncx-index` for the entity index and document
//! store, `ncx-core` for concept postings) — this crate just guarantees
//! that what comes back is byte-for-byte what was written, or a typed
//! [`StoreError`] saying why not.
//!
//! ## Integrity and compatibility
//!
//! * every segment file carries a magic header and a trailing FNV-1a64
//!   checksum over its full contents; the manifest additionally records
//!   each file's byte length and whole-file checksum, and is itself
//!   checksummed;
//! * the manifest's `format_version` gates reads: a snapshot written by
//!   a **newer** format is refused with
//!   [`StoreError::VersionMismatch`], never misparsed;
//! * corruption surfaces as [`StoreError::ChecksumMismatch`], truncation
//!   as [`StoreError::Truncated`], structural damage as
//!   [`StoreError::Corrupt`] — callers can tell an operator exactly
//!   which file to restore.
//!
//! ## Zero-copy reads
//!
//! [`Segment`] owns one contiguous byte buffer per file; [`SegView`] is
//! a cursor over that buffer handing out `&[u8]`/`&str` slices and
//! fixed-width scalars without per-record allocation. Readers decode
//! postings straight out of the slice, so swapping the backing buffer
//! for an `mmap` region (when a real `memmap2` is available) changes no
//! decoding code.

pub mod checksum;
pub mod error;
pub mod fault;
pub mod manifest;
pub mod segment;
pub mod snapshot;
pub mod varint;

pub use checksum::fnv1a64;
pub use error::StoreError;
pub use manifest::{FileEntry, GenerationEntry, Manifest, FORMAT_VERSION, MANIFEST_NAME};
pub use segment::{SegView, Segment, SegmentWriter};
pub use snapshot::{shard_of, GenerationWriter, Snapshot, SnapshotWriter};
