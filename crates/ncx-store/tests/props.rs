//! Property/fuzz tests for the snapshot substrate: arbitrary payloads
//! round-trip exactly, and arbitrary corruption is always a typed error,
//! never a panic or a silent wrong read.

use ncx_store::segment::{Segment, SegmentWriter};
use ncx_store::varint;
use ncx_store::{fnv1a64, Manifest, StoreError};
use proptest::prelude::*;

proptest! {
    /// Varints round-trip any u64 and consume exactly their own bytes.
    #[test]
    fn varint_roundtrip(v in any::<u64>(), trailing in prop::collection::vec(any::<u8>(), 0..8)) {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, v);
        let encoded_len = buf.len();
        buf.extend_from_slice(&trailing);
        let (got, used) = varint::read_u64(&buf).expect("valid encoding decodes");
        prop_assert_eq!(got, v);
        prop_assert_eq!(used, encoded_len);
    }

    /// Arbitrary byte soup fed to the varint decoder never panics and
    /// never reports consuming more bytes than exist.
    #[test]
    fn varint_decoder_total(bytes in prop::collection::vec(any::<u8>(), 0..16)) {
        if let Some((_, used)) = varint::read_u64(&bytes) {
            prop_assert!(used <= bytes.len());
        }
    }

    /// A segment built from arbitrary records reads back bit-for-bit:
    /// u32 ids, f64 scores (including NaN payloads and infinities via
    /// raw bit patterns), and length-framed strings.
    #[test]
    fn segment_records_roundtrip(
        kind in any::<u16>(),
        records in prop::collection::vec((any::<u32>(), any::<u64>(), "[a-zéλ0-9 ]{0,24}"), 0..40),
    ) {
        let mut w = SegmentWriter::new(kind);
        w.put_varint(records.len() as u64);
        for (id, bits, s) in &records {
            w.put_u32(*id);
            w.put_f64(f64::from_bits(*bits));
            w.put_len_str(s);
        }
        let seg = Segment::from_bytes("p.seg", w.into_bytes()).expect("fresh bytes verify");
        prop_assert_eq!(seg.kind(), kind);
        let mut v = seg.view();
        prop_assert_eq!(v.get_varint().unwrap() as usize, records.len());
        for (id, bits, s) in &records {
            prop_assert_eq!(v.get_u32().unwrap(), *id);
            prop_assert_eq!(v.get_f64().unwrap().to_bits(), *bits);
            prop_assert_eq!(v.get_len_str().unwrap(), s.as_str());
        }
        v.finish().unwrap();
    }

    /// Any single-byte mutation of a valid segment image is rejected
    /// with a typed error — the checksum leaves no blind spots.
    #[test]
    fn segment_mutations_always_detected(
        payload in prop::collection::vec(any::<u8>(), 0..256),
        flip_at in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let mut w = SegmentWriter::new(3);
        w.put_bytes(&payload);
        let mut bytes = w.into_bytes();
        let i = flip_at % bytes.len();
        bytes[i] ^= xor;
        prop_assert!(Segment::from_bytes("m.seg", bytes).is_err());
    }

    /// Truncating a valid segment anywhere is rejected.
    #[test]
    fn segment_truncations_always_detected(
        payload in prop::collection::vec(any::<u8>(), 0..128),
        cut_at in any::<usize>(),
    ) {
        let mut w = SegmentWriter::new(1);
        w.put_bytes(&payload);
        let bytes = w.into_bytes();
        let cut = cut_at % bytes.len();
        let err = Segment::from_bytes("t.seg", bytes[..cut].to_vec()).unwrap_err();
        let typed = matches!(
            err,
            StoreError::Truncated { .. } | StoreError::ChecksumMismatch { .. }
        );
        prop_assert!(typed, "unexpected error: {err}");
    }

    /// The manifest parser is total over arbitrary bytes: it returns an
    /// error (or, vanishingly unlikely, a manifest) but never panics.
    #[test]
    fn manifest_parser_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Manifest::parse(&bytes);
    }

    /// Checksum determinism: equal inputs hash equal, and an appended
    /// byte always changes the hash (FNV-1a has no trivial absorbing
    /// suffix state).
    #[test]
    fn checksum_sensitivity(bytes in prop::collection::vec(any::<u8>(), 0..64), extra in any::<u8>()) {
        let h = fnv1a64(&bytes);
        prop_assert_eq!(h, fnv1a64(&bytes));
        let mut longer = bytes.clone();
        longer.push(extra);
        prop_assert_ne!(fnv1a64(&longer), h);
    }
}
