//! Offline stand-in for `rand` 0.8.
//!
//! Implements exactly the API subset this workspace uses: seedable
//! xoshiro256++ generators (`rngs::StdRng` / `rngs::SmallRng`), the
//! `Rng` extension methods (`gen`, `gen_range`, `gen_bool`), and
//! `seq::SliceRandom` (`choose`, `choose_multiple`, `shuffle`).
//! Deterministic for a given seed, which is all the reproduction needs.

pub mod rngs;
pub mod seq;

/// Core entropy source: everything else derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a `u64` seed (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's full output range
/// (`f64`/`f32` are uniform in `[0, 1)`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard the open upper bound against rounding.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Extension methods over any [`RngCore`], mirroring rand 0.8's `Rng`.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
