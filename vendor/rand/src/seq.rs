//! Slice sampling helpers mirroring `rand::seq::SliceRandom`.

use crate::{RngCore, SampleRange};

pub trait SliceRandom {
    type Item;

    /// One uniformly random element, or `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Up to `amount` distinct elements in random order.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;

    /// Fisher–Yates in-place shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample_single(rng)])
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        let mut indices: Vec<usize> = (0..self.len()).collect();
        // Partial Fisher–Yates: the first `amount` slots end up a uniform
        // sample without permuting the whole index vector.
        for i in 0..amount {
            let j = (i..indices.len()).sample_single(rng);
            indices.swap(i, j);
        }
        indices[..amount]
            .iter()
            .map(|&i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = [1, 2, 3, 4, 5];
        assert!(v.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());

        let picked: Vec<i32> = v.choose_multiple(&mut rng, 3).copied().collect();
        assert_eq!(picked.len(), 3);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 3, "choose_multiple must be distinct");

        let mut w = [1, 2, 3, 4, 5, 6, 7, 8];
        let orig = w;
        w.shuffle(&mut rng);
        let mut sorted = w;
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle is a permutation");
    }
}
