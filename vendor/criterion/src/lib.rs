//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — with
//! a simple warmup + timed-batch runner instead of criterion's full
//! statistical machinery. Each benchmark prints its mean iteration time.
//!
//! Tuning via env vars: `CRITERION_WARMUP_MS` (default 50) and
//! `CRITERION_MEASURE_MS` (default 300).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_ms(key: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(key)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(default),
    )
}

/// Runs `f` repeatedly: first until the warmup budget elapses, then until
/// the measurement budget elapses, and reports the measured mean.
fn run_bench<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let warmup = env_ms("CRITERION_WARMUP_MS", 50);
    let measure = env_ms("CRITERION_MEASURE_MS", 300);

    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
        budget: warmup,
    };
    f(&mut b);

    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
        budget: measure,
    };
    f(&mut b);

    let mean = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / b.iters as u32
    };
    println!("bench: {label:<48} {mean:>12.2?}/iter ({} iters)", b.iters);
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Times closure invocations until this phase's budget is exhausted
    /// (always at least one invocation).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        loop {
            let start = Instant::now();
            black_box(f());
            self.elapsed += start.elapsed();
            self.iters += 1;
            if self.elapsed >= self.budget {
                break;
            }
        }
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; the shim's runner is
    /// time-budgeted rather than sample-counted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id.0), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// `criterion_group!(benches, fn_a, fn_b)` — a runner invoking each
/// benchmark function with a fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// `criterion_main!(benches)` — the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
