//! Offline stand-in for the `rustc-hash` crate.
//!
//! Provides `FxHashMap`/`FxHashSet`: `std` collections parameterised with
//! the Fx multiply-rotate hasher (fast, non-cryptographic, deterministic).
//! Only the surface this workspace uses is implemented.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Firefox/rustc "Fx" hash: one wrapping multiply and a rotate per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        for i in 0..1000u32 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn deterministic() {
        let h = |s: &str| {
            let mut h = FxHasher::default();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_eq!(h("abc"), h("abc"));
        assert_ne!(h("abc"), h("abd"));
    }
}
