//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! forward-compatibility marker — no code actually serialises through
//! serde (snapshots use a hand-rolled binary format). The derives
//! therefore expand to nothing; the marker traits live in the `serde`
//! shim crate.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
