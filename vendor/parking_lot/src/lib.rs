//! Offline stand-in for `parking_lot`: the same no-poisoning API shape,
//! backed by `std::sync`. A poisoned std lock is transparently recovered,
//! matching parking_lot's behaviour of not propagating panics to later
//! lock holders.

use std::sync;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
