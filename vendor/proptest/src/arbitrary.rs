//! `any::<T>()` — type-driven strategies for primitives.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;
use rand::{Rng, Standard};

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                <$t as Standard>::sample_standard(rng)
            }
        }
    )*};
}
impl_arbitrary_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly printable ASCII; occasionally something multibyte.
        if rng.gen_bool(0.9) {
            rng.gen_range(0x20u32..0x7f) as u8 as char
        } else {
            char::from_u32(rng.gen_range(0xa0u32..0x2000)).unwrap_or('¤')
        }
    }
}

pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<bool>()` etc. — uniform over the type's value space.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
