//! Config, error type, and deterministic RNG plumbing for `proptest!`.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default cases per property. Real proptest uses 256; this workspace caps
/// lower so the full suite stays fast, and individual suites override via
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
pub const DEFAULT_CASES: u32 = 64;

/// RNG handed to strategies. One deterministic stream per test function.
pub type TestRng = StdRng;

/// Deterministic per-function RNG: seeded from an FNV-1a hash of the test's
/// module path + name, optionally perturbed by `PROPTEST_RNG_SEED`.
pub fn fn_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if let Ok(extra) = std::env::var("PROPTEST_RNG_SEED") {
        if let Ok(n) = extra.trim().parse::<u64>() {
            h ^= n.rotate_left(17);
        }
    }
    TestRng::seed_from_u64(h)
}

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// Explicit cases, unless `PROPTEST_CASES` overrides them globally.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.trim().parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: DEFAULT_CASES,
        }
    }
}

/// A failed property case; carries the `prop_assert!` message.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: String) -> Self {
        Self { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
