//! Random string generation from a regex subset.
//!
//! Supported syntax — enough for every pattern in this workspace:
//! literal chars, `.` (mixed ASCII + multibyte sample set), classes
//! `[a-z0-9 ]` with ranges and literals, groups `( .. )`, and the
//! quantifiers `{m}`, `{m,n}`, `?`, `*`, `+`. Unsupported constructs
//! (alternation, negated classes, anchors) panic loudly rather than
//! silently generating the wrong distribution.

use crate::test_runner::TestRng;
use rand::Rng;

/// Sample set for `.`: printable ASCII plus a few multibyte chars so
/// UTF-8 boundary handling gets exercised.
const ANY_EXTRA: &[char] = &['é', 'ß', 'λ', '中', '文', '—', '✓'];

#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    Any,
    Class(Vec<(char, char)>),
    Group(Vec<Item>),
}

#[derive(Debug, Clone)]
struct Item {
    node: Node,
    min: usize,
    max: usize,
}

pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let items = parse_seq(&mut pattern.chars().collect::<Vec<_>>().as_slice(), pattern);
    let mut out = String::new();
    emit_seq(&items, rng, &mut out);
    out
}

fn emit_seq(items: &[Item], rng: &mut TestRng, out: &mut String) {
    for item in items {
        let reps = if item.min == item.max {
            item.min
        } else {
            rng.gen_range(item.min..=item.max)
        };
        for _ in 0..reps {
            match &item.node {
                Node::Lit(c) => out.push(*c),
                Node::Any => {
                    // ~1 in 8 draws picks a multibyte char.
                    if rng.gen_range(0u32..8) == 0 {
                        out.push(ANY_EXTRA[rng.gen_range(0..ANY_EXTRA.len())]);
                    } else {
                        out.push(rng.gen_range(0x20u32..0x7f) as u8 as char);
                    }
                }
                Node::Class(ranges) => {
                    let total: u32 = ranges
                        .iter()
                        .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                        .sum();
                    let mut pick = rng.gen_range(0..total);
                    for &(lo, hi) in ranges {
                        let span = hi as u32 - lo as u32 + 1;
                        if pick < span {
                            out.push(char::from_u32(lo as u32 + pick).expect("class char"));
                            break;
                        }
                        pick -= span;
                    }
                }
                Node::Group(inner) => emit_seq(inner, rng, out),
            }
        }
    }
}

/// Parses until end of input or an unmatched `)`, consuming from `chars`.
fn parse_seq(chars: &mut &[char], pattern: &str) -> Vec<Item> {
    let mut items = Vec::new();
    while let Some(&c) = chars.first() {
        let node = match c {
            ')' => break,
            '(' => {
                *chars = &chars[1..];
                let inner = parse_seq(chars, pattern);
                match chars.first() {
                    Some(')') => *chars = &chars[1..],
                    _ => panic!("unbalanced group in pattern {pattern:?}"),
                }
                Node::Group(inner)
            }
            '[' => {
                *chars = &chars[1..];
                Node::Class(parse_class(chars, pattern))
            }
            '.' => {
                *chars = &chars[1..];
                Node::Any
            }
            '\\' => {
                *chars = &chars[1..];
                let lit = *chars
                    .first()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                *chars = &chars[1..];
                Node::Lit(lit)
            }
            '|' | '^' | '$' => panic!("unsupported regex construct {c:?} in pattern {pattern:?}"),
            lit => {
                *chars = &chars[1..];
                Node::Lit(lit)
            }
        };
        let (min, max) = parse_quantifier(chars, pattern);
        items.push(Item { node, min, max });
    }
    items
}

fn parse_class(chars: &mut &[char], pattern: &str) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    loop {
        match chars.first() {
            None => panic!("unterminated class in pattern {pattern:?}"),
            Some(']') => {
                *chars = &chars[1..];
                break;
            }
            Some('^') if ranges.is_empty() => {
                panic!("negated classes unsupported in pattern {pattern:?}")
            }
            Some(&lo) => {
                let lo = if lo == '\\' {
                    *chars = &chars[1..];
                    *chars
                        .first()
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"))
                } else {
                    lo
                };
                *chars = &chars[1..];
                if chars.first() == Some(&'-') && chars.get(1).is_some_and(|&c| c != ']') {
                    let hi = chars[1];
                    *chars = &chars[2..];
                    assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
                    ranges.push((lo, hi));
                } else {
                    ranges.push((lo, lo));
                }
            }
        }
    }
    assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
    ranges
}

fn parse_quantifier(chars: &mut &[char], pattern: &str) -> (usize, usize) {
    match chars.first() {
        Some('{') => {
            let close = chars
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"));
            let body: String = chars[1..close].iter().collect();
            *chars = &chars[close + 1..];
            let parse = |s: &str| -> usize {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad quantifier {body:?} in pattern {pattern:?}"))
            };
            match body.split_once(',') {
                None => {
                    let n = parse(&body);
                    (n, n)
                }
                Some((lo, hi)) => (parse(lo), parse(hi)),
            }
        }
        Some('?') => {
            *chars = &chars[1..];
            (0, 1)
        }
        Some('*') => {
            *chars = &chars[1..];
            (0, 8)
        }
        Some('+') => {
            *chars = &chars[1..];
            (1, 8)
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::fn_rng;

    #[test]
    fn workspace_patterns() {
        let mut rng = fn_rng("string::tests");
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z ]{0,80}", &mut rng);
            assert!(s.len() <= 80);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));

            let s = generate_from_pattern("[a-z]{2,8}( [a-z]{2,8}){1,6}", &mut rng);
            let words: Vec<&str> = s.split(' ').collect();
            assert!((2..=7).contains(&words.len()), "{s:?}");
            assert!(words.iter().all(|w| (2..=8).contains(&w.len())), "{s:?}");

            let s = generate_from_pattern(".{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);

            let s = generate_from_pattern("[a-e]{1,2}", &mut rng);
            assert!((1..=2).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='e').contains(&c)));
        }
    }
}
