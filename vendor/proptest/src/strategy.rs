//! The `Strategy` trait plus numeric-range, tuple, and string impls.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for producing random values. No shrinking in this shim; a
/// strategy is just a deterministic-given-the-RNG sampler.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Always produces clones of one value (parity with proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_numeric_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_numeric_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// String strategies from a regex subset, e.g. `"[a-z ]{0,80}"`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::fn_rng;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = fn_rng("strategy::tests");
        for _ in 0..200 {
            let x = (3u32..10).generate(&mut rng);
            assert!((3..10).contains(&x));
            let f = (0.0f64..5.0).generate(&mut rng);
            assert!((0.0..5.0).contains(&f));
            let (a, b) = (0u64..4, 1u8..=2).generate(&mut rng);
            assert!(a < 4 && (1..=2).contains(&b));
        }
    }
}
