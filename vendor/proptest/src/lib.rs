//! Offline stand-in for `proptest`.
//!
//! Covers the subset this workspace uses: the `proptest!` macro (with an
//! optional `#![proptest_config(..)]` header), `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`, numeric-range and tuple
//! strategies, `collection::vec`, `any::<T>()`, and string strategies from
//! a regex subset (`[a-z]{1,5}`-style classes, groups, `.`, quantifiers).
//!
//! Unlike real proptest there is **no shrinking** — a failing case reports
//! its case number and deterministic per-test seed instead. Case counts
//! default to [`test_runner::DEFAULT_CASES`] and can be overridden with
//! `PROPTEST_CASES` or `ProptestConfig::with_cases`.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::any;

pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of real proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Fails the current property case (early-returns a `TestCaseError`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, with optional trailing format context.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}", l, r, ::std::format!($($fmt)+)
        );
    }};
}

/// `prop_assert!` for inequality, with optional trailing format context.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}", l, r, ::std::format!($($fmt)+)
        );
    }};
}

/// The `proptest!` block: one or more `fn name(pat in strategy, ..) { .. }`
/// items, each expanded into a `#[test]`-style function that samples its
/// strategies for N cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let __cases = __config.resolved_cases();
                let mut __rng = $crate::test_runner::fn_rng(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&$strat, &mut __rng);
                    )+
                    let __result: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(__e) = __result {
                        ::core::panic!(
                            "proptest {} case {}/{}: {}",
                            stringify!($name), __case + 1, __cases, __e
                        );
                    }
                }
            }
        )*
    };
}
