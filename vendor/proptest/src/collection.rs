//! `collection::vec` — the only collection strategy this workspace uses.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Length specifications accepted by [`vec`](fn@vec).
pub trait IntoSizeRange {
    fn bounds(self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self)
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

pub struct VecStrategy<S> {
    elem: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.min == self.max {
            self.min
        } else {
            rng.gen_range(self.min..=self.max)
        };
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// `vec(element_strategy, 1..12)` — vectors whose length is drawn from the
/// given range and whose elements come from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { elem, min, max }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::fn_rng;

    #[test]
    fn lengths_respected() {
        let mut rng = fn_rng("collection::tests");
        for _ in 0..100 {
            let v = vec(0u32..5, 1..4).generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
            let nested = vec(vec(0u8..2, 2..3), 0..3).generate(&mut rng);
            assert!(nested.len() <= 2);
            assert!(nested.iter().all(|inner| inner.len() == 2));
        }
    }
}
