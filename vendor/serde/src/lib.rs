//! Offline stand-in for `serde`.
//!
//! `use serde::{Serialize, Deserialize}` imports both the marker traits
//! below and the no-op derive macros re-exported from the `serde_derive`
//! shim (a single `use` pulls from the type and macro namespaces at once,
//! exactly as with real serde).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; real serialisation is not wired in this offline build.
pub trait Serialize {}

/// Marker trait; real deserialisation is not wired in this offline build.
pub trait Deserialize<'de> {}
