//! # ncexplorer — OLAP-style news exploration over knowledge graphs
//!
//! A Rust reproduction of **NCExplorer** (ICDE 2024): *Enabling Roll-up
//! and Drill-down Operations in News Exploration with Knowledge Graphs
//! for Due Diligence and Risk Management*.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | contents |
//! |---|---|
//! | [`kg`] | knowledge-graph store, ontology relation, path counting |
//! | [`text`] | tokenizer, stemmer, TF-IDF/BM25, gazetteer entity linking |
//! | [`index`] | document store, inverted indexes, the Lucene baseline |
//! | [`embed`] | hashing embedder + vector indexes, the BERT baseline |
//! | [`reach`] | k-hop reachability index, target-distance oracle |
//! | [`newslink`] | NewsLink and NewsLink-BERT baselines |
//! | [`core`] | the NCExplorer engine: roll-up, drill-down, estimators |
//! | [`store`] | persistent sharded snapshot format (save/cold-open) |
//! | [`serve`] | concurrent session multiplexer: admission control, deadlines, caching, replicas |
//! | [`obs`] | metrics registry, latency histograms, per-query trace spans |
//! | [`datagen`] | synthetic KG/corpus generators and evaluation oracles |
//! | [`eval`] | NDCG, statistics, tables |
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use ncexplorer::datagen::{generate_kg, generate_corpus, KgGenConfig, CorpusConfig};
//! use ncexplorer::core::{NcExplorer, NcxConfig};
//!
//! let kg = Arc::new(generate_kg(&KgGenConfig::default()));
//! let corpus = generate_corpus(&kg, &CorpusConfig { articles: 50, ..Default::default() });
//! let engine = NcExplorer::build(kg, corpus.store, NcxConfig { samples: 10, ..Default::default() });
//!
//! let query = engine.query(&["Financial Crime"]).unwrap();
//! let hits = engine.rollup(&query, 5);
//! let subtopics = engine.drilldown(&query, 5);
//! assert!(!hits.is_empty());
//! assert!(!subtopics.is_empty());
//! ```
//!
//! Built engines persist: `engine.save(dir)` writes an `ncx-store`
//! snapshot and `NcExplorer::open(dir, kg, config)` cold-opens it,
//! serving identical results without re-running the two-pass build.
//!
//! For concurrent serving, wrap an engine (or N snapshot replicas) in
//! [`serve::NcxServe`]: sessions share a cross-query cache and are
//! admission-controlled with per-query deadlines — see
//! `examples/serve.rs` for a multi-threaded walkthrough.

pub use ncx_core as core;
pub use ncx_datagen as datagen;
pub use ncx_embed as embed;
pub use ncx_eval as eval;
pub use ncx_index as index;
pub use ncx_kg as kg;
pub use ncx_newslink as newslink;
pub use ncx_obs as obs;
pub use ncx_reach as reach;
pub use ncx_serve as serve;
pub use ncx_store as store;
pub use ncx_text as text;
