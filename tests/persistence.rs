//! Snapshot integration tests: random corpora must round-trip
//! **bit-for-bit** (identical roll-up and drill-down results before and
//! after a cold open), and every corruption mode must surface as the
//! right typed [`StoreError`] — never a panic, never silently wrong
//! results.

use ncexplorer::core::{NcExplorer, NcxConfig, Parallelism};
use ncexplorer::datagen::{generate_corpus, generate_kg, CorpusConfig, KgGenConfig};
use ncexplorer::kg::DocId;
use ncexplorer::store::{fnv1a64, StoreError, MANIFEST_NAME};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ncx_persistence_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_engine(
    articles: usize,
    seed: u64,
    shards: u32,
) -> (Arc<ncexplorer::kg::KnowledgeGraph>, NcExplorer) {
    let kg = Arc::new(generate_kg(&KgGenConfig::default()));
    let corpus = generate_corpus(
        &kg,
        &CorpusConfig {
            articles,
            seed,
            ..CorpusConfig::default()
        },
    );
    let engine = NcExplorer::build(
        kg.clone(),
        corpus.store,
        NcxConfig {
            samples: 10,
            parallelism: Parallelism::sequential(),
            snapshot_shards: shards,
            ..NcxConfig::default()
        },
    );
    (kg, engine)
}

/// Every query result a snapshot must preserve, captured for comparison.
fn fingerprint(engine: &NcExplorer, topics: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    for topic in topics {
        let q = engine.query(&[topic]).unwrap();
        for h in engine.rollup(&q, 100) {
            // Exact f64 bits, not a display rounding.
            out.push(format!(
                "{topic}/r/{}/{:016x}",
                h.doc.raw(),
                h.score.to_bits()
            ));
        }
        for s in engine.drilldown(&q, 25) {
            out.push(format!(
                "{topic}/d/{}/{}/{}/{:016x}",
                s.concept.raw(),
                s.matching_docs,
                s.distinct_entities,
                s.score.to_bits()
            ));
        }
    }
    out
}

const TOPICS: [&str; 4] = ["Financial Crime", "Elections", "Bank", "Lawsuits"];

#[test]
fn cold_open_answers_bit_for_bit() {
    let (kg, engine) = build_engine(120, 7, 4);
    let dir = temp_dir("roundtrip");
    engine.save(&dir).unwrap();
    let cold = NcExplorer::open(&dir, kg, engine.config().clone()).unwrap();
    assert_eq!(fingerprint(&engine, &TOPICS), fingerprint(&cold, &TOPICS));
    // The corpus came back byte-identical too.
    assert_eq!(cold.store().len(), engine.store().len());
    for (a, b) in engine.store().iter().zip(cold.store().iter()) {
        assert_eq!(
            (&a.title, &a.body, a.source, a.published),
            (&b.title, &b.body, b.source, b.published)
        );
    }
    // And the per-posting score decomposition survives exactly.
    for c in cold.index().indexed_concepts() {
        let before = engine.index().postings(c);
        let after = cold.index().postings(c);
        assert_eq!(before.len(), after.len());
        for (x, y) in before.iter().zip(after) {
            assert_eq!(x.doc, y.doc);
            assert_eq!(x.cdr.to_bits(), y.cdr.to_bits());
            assert_eq!(x.cdro.to_bits(), y.cdro.to_bits());
            assert_eq!(x.cdrc.to_bits(), y.cdrc.to_bits());
            assert_eq!(x.pivot, y.pivot);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reopened_engine_keeps_streaming() {
    // A cold-opened engine is a full engine: ingestion keeps working and
    // extends both index and store.
    let (kg, engine) = build_engine(40, 3, 2);
    let dir = temp_dir("stream");
    engine.save(&dir).unwrap();
    let mut cold = NcExplorer::open(&dir, kg, engine.config().clone()).unwrap();
    let before = {
        let q = cold.query(&["Financial Crime"]).unwrap();
        cold.rollup(&q, 1000).len()
    };
    let doc = cold.ingest("DBS bank faces fraud and money laundering charges.");
    assert_eq!(doc.index(), 40);
    assert_eq!(cold.store().len(), 41);
    let q = cold.query(&["Financial Crime"]).unwrap();
    assert!(cold.rollup(&q, 1000).len() > before);
    // …and the extended engine snapshots again.
    let dir2 = temp_dir("stream2");
    cold.save(&dir2).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();
}

#[test]
fn shard_count_does_not_change_answers() {
    // The shard map is a storage layout, not a semantic choice.
    let (kg, engine) = build_engine(80, 11, 1);
    let reference = fingerprint(&engine, &TOPICS);
    for shards in [1u32, 3, 16] {
        let mut config = engine.config().clone();
        config.snapshot_shards = shards;
        let dir = temp_dir(&format!("shards{shards}"));
        // Re-save under a different shard count via a rebuilt engine
        // config: save uses config.snapshot_shards.
        let (kg2, engine2) = build_engine(80, 11, shards);
        let _ = kg2;
        engine2.save(&dir).unwrap();
        let cold = NcExplorer::open(&dir, kg.clone(), config).unwrap();
        assert_eq!(fingerprint(&cold, &TOPICS), reference, "shards={shards}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random small corpora round-trip bit-for-bit whatever the corpus
    /// seed, size, and shard count.
    #[test]
    fn random_corpora_roundtrip(
        articles in 5usize..60,
        seed in 0u64..1000,
        shards in 1u32..9,
    ) {
        let (kg, engine) = build_engine(articles, seed, shards);
        let dir = temp_dir(&format!("prop_{articles}_{seed}_{shards}"));
        engine.save(&dir).unwrap();
        let cold = NcExplorer::open(&dir, kg, engine.config().clone()).unwrap();
        prop_assert_eq!(fingerprint(&engine, &TOPICS), fingerprint(&cold, &TOPICS));
        prop_assert_eq!(cold.index().num_postings(), engine.index().num_postings());
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---- corruption: every failure is a typed error ----

fn saved_snapshot(tag: &str) -> (Arc<ncexplorer::kg::KnowledgeGraph>, NcExplorer, PathBuf) {
    let (kg, engine) = build_engine(30, 5, 3);
    let dir = temp_dir(tag);
    engine.save(&dir).unwrap();
    (kg, engine, dir)
}

fn open_err(
    dir: &Path,
    kg: &Arc<ncexplorer::kg::KnowledgeGraph>,
    engine: &NcExplorer,
) -> StoreError {
    NcExplorer::open(dir, kg.clone(), engine.config().clone())
        .err()
        .expect("corrupted snapshot must not open")
}

#[test]
fn flipped_byte_in_any_file_is_detected() {
    let (kg, engine, dir) = saved_snapshot("flip");
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let original = std::fs::read(&path).unwrap();
        // Flip a byte at several positions through the file.
        for frac in [0.1, 0.5, 0.9] {
            let mut bad = original.clone();
            let i = ((bad.len() as f64 * frac) as usize).min(bad.len() - 1);
            bad[i] ^= 0x20;
            std::fs::write(&path, &bad).unwrap();
            let err = open_err(&dir, &kg, &engine);
            assert!(
                matches!(
                    err,
                    StoreError::ChecksumMismatch { .. }
                        | StoreError::Corrupt { .. }
                        | StoreError::Truncated { .. }
                        | StoreError::VersionMismatch { .. }
                        | StoreError::Incompatible { .. }
                ),
                "{name} flip at {frac}: unexpected {err}"
            );
        }
        std::fs::write(&path, &original).unwrap();
        // Restored: opens again.
        NcExplorer::open(&dir, kg.clone(), engine.config().clone()).unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_segment_is_typed_error() {
    let (kg, engine, dir) = saved_snapshot("trunc");
    let path = dir.join("concepts-000.seg");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    let err = open_err(&dir, &kg, &engine);
    assert!(
        matches!(err, StoreError::Truncated { .. }),
        "expected Truncated, got {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_segment_is_typed_error() {
    let (kg, engine, dir) = saved_snapshot("missing");
    std::fs::remove_file(dir.join("entities.seg")).unwrap();
    let err = open_err(&dir, &kg, &engine);
    assert!(
        matches!(err, StoreError::MissingFile { ref file } if file == "entities.seg"),
        "expected MissingFile, got {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn future_format_version_is_refused() {
    let (kg, engine, dir) = saved_snapshot("future");
    // Rewrite the manifest claiming format version 99, with a correct
    // self-checksum so the version gate (not the checksum) is what fires.
    let path = dir.join(MANIFEST_NAME);
    let text = std::fs::read_to_string(&path).unwrap();
    let body = text
        .rsplit_once("manifest_checksum")
        .map(|(b, _)| b.to_string())
        .unwrap()
        .replace("format_version 1", "format_version 99");
    let sum = fnv1a64(body.as_bytes());
    std::fs::write(&path, format!("{body}manifest_checksum {sum:016x}\n")).unwrap();
    let err = open_err(&dir, &kg, &engine);
    assert!(
        matches!(
            err,
            StoreError::VersionMismatch {
                found: 99,
                supported: 1
            }
        ),
        "expected VersionMismatch, got {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_and_foreign_directories_are_not_snapshots() {
    let (kg, engine, dir) = saved_snapshot("foreign");
    let empty = temp_dir("empty");
    std::fs::create_dir_all(&empty).unwrap();
    assert!(matches!(
        open_err(&empty, &kg, &engine),
        StoreError::NotASnapshot { .. }
    ));
    // A directory with a garbage manifest is corrupt, not a panic.
    std::fs::write(empty.join(MANIFEST_NAME), b"\xff\xfe not a manifest").unwrap();
    assert!(matches!(
        open_err(&empty, &kg, &engine),
        StoreError::Corrupt { .. }
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&empty).ok();
}

#[test]
fn wrong_knowledge_graph_is_incompatible() {
    let (_kg, engine, dir) = saved_snapshot("wrongkg");
    let other = Arc::new(generate_kg(&KgGenConfig {
        orphan_entities: 3,
        synth_per_group: 2,
        ..KgGenConfig::default()
    }));
    let err = NcExplorer::open(&dir, other, engine.config().clone())
        .err()
        .expect("foreign KG must be refused");
    assert!(
        matches!(err, StoreError::Incompatible { .. }),
        "expected Incompatible, got {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_is_canonical() {
    // Saving the same engine twice produces byte-identical directories —
    // no iteration-order leakage from hash maps into the format.
    let (kg, engine) = build_engine(40, 9, 4);
    let (dir_a, dir_b) = (temp_dir("canon_a"), temp_dir("canon_b"));
    engine.save(&dir_a).unwrap();
    engine.save(&dir_b).unwrap();
    // And an open → save cycle reproduces the same bytes again.
    let cold = NcExplorer::open(&dir_a, kg, engine.config().clone()).unwrap();
    let dir_c = temp_dir("canon_c");
    cold.save(&dir_c).unwrap();
    for entry in std::fs::read_dir(&dir_a).unwrap() {
        let name = entry.unwrap().file_name();
        let a = std::fs::read(dir_a.join(&name)).unwrap();
        let b = std::fs::read(dir_b.join(&name)).unwrap();
        let c = std::fs::read(dir_c.join(&name)).unwrap();
        assert_eq!(a, b, "{name:?} differs across saves");
        assert_eq!(a, c, "{name:?} differs after an open→save cycle");
    }
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
    std::fs::remove_dir_all(&dir_c).ok();
}

#[test]
fn document_ids_stay_aligned_after_reload() {
    let (kg, engine) = build_engine(25, 13, 2);
    let dir = temp_dir("align");
    engine.save(&dir).unwrap();
    let cold = NcExplorer::open(&dir, kg, engine.config().clone()).unwrap();
    for i in 0..engine.store().len() {
        let d = DocId::from_index(i);
        assert_eq!(engine.document(d).title, cold.document(d).title);
        assert_eq!(
            engine.index().concepts_of_doc(d),
            cold.index().concepts_of_doc(d)
        );
        assert_eq!(
            engine.index().entity_index.entities_of(d),
            cold.index().entity_index.entities_of(d)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
