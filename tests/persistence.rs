//! Snapshot integration tests: random corpora must round-trip
//! **bit-for-bit** (identical roll-up and drill-down results before and
//! after a cold open), and every corruption mode must surface as the
//! right typed [`StoreError`] — never a panic, never silently wrong
//! results.

use ncexplorer::core::{NcExplorer, NcxConfig, Parallelism, StoreConfig};
use ncexplorer::datagen::{generate_corpus, generate_kg, CorpusConfig, KgGenConfig};
use ncexplorer::kg::DocId;
use ncexplorer::store::{fnv1a64, Snapshot, StoreError, MANIFEST_NAME};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ncx_persistence_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_engine(
    articles: usize,
    seed: u64,
    shards: u32,
) -> (Arc<ncexplorer::kg::KnowledgeGraph>, NcExplorer) {
    let kg = Arc::new(generate_kg(&KgGenConfig::default()));
    let corpus = generate_corpus(
        &kg,
        &CorpusConfig {
            articles,
            seed,
            ..CorpusConfig::default()
        },
    );
    let engine = NcExplorer::build(
        kg.clone(),
        corpus.store,
        NcxConfig {
            samples: 10,
            parallelism: Parallelism::sequential(),
            store: StoreConfig {
                snapshot_shards: shards,
                ..StoreConfig::default()
            },
            ..NcxConfig::default()
        },
    );
    (kg, engine)
}

/// Every query result a snapshot must preserve, captured for comparison.
fn fingerprint(engine: &NcExplorer, topics: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    for topic in topics {
        let q = engine.query(&[topic]).unwrap();
        for h in engine.rollup(&q, 100) {
            // Exact f64 bits, not a display rounding.
            out.push(format!(
                "{topic}/r/{}/{:016x}",
                h.doc.raw(),
                h.score.to_bits()
            ));
        }
        for s in engine.drilldown(&q, 25) {
            out.push(format!(
                "{topic}/d/{}/{}/{}/{:016x}",
                s.concept.raw(),
                s.matching_docs,
                s.distinct_entities,
                s.score.to_bits()
            ));
        }
    }
    out
}

const TOPICS: [&str; 4] = ["Financial Crime", "Elections", "Bank", "Lawsuits"];

#[test]
fn cold_open_answers_bit_for_bit() {
    let (kg, engine) = build_engine(120, 7, 4);
    let dir = temp_dir("roundtrip");
    engine.save(&dir).unwrap();
    let cold = NcExplorer::open(&dir, kg, engine.config().clone()).unwrap();
    assert_eq!(fingerprint(&engine, &TOPICS), fingerprint(&cold, &TOPICS));
    // The corpus came back byte-identical too.
    assert_eq!(cold.store().len(), engine.store().len());
    for (a, b) in engine.store().iter().zip(cold.store().iter()) {
        assert_eq!(
            (&a.title, &a.body, a.source, a.published),
            (&b.title, &b.body, b.source, b.published)
        );
    }
    // And the per-posting score decomposition survives exactly.
    for c in cold.index().indexed_concepts() {
        let before = engine.index().postings(c);
        let after = cold.index().postings(c);
        assert_eq!(before.len(), after.len());
        for (x, y) in before.iter().zip(after) {
            assert_eq!(x.doc, y.doc);
            assert_eq!(x.cdr.to_bits(), y.cdr.to_bits());
            assert_eq!(x.cdro.to_bits(), y.cdro.to_bits());
            assert_eq!(x.cdrc.to_bits(), y.cdrc.to_bits());
            assert_eq!(x.pivot, y.pivot);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reopened_engine_keeps_streaming() {
    // A cold-opened engine is a full engine: ingestion keeps working and
    // extends both index and store.
    let (kg, engine) = build_engine(40, 3, 2);
    let dir = temp_dir("stream");
    engine.save(&dir).unwrap();
    let mut cold = NcExplorer::open(&dir, kg, engine.config().clone()).unwrap();
    let before = {
        let q = cold.query(&["Financial Crime"]).unwrap();
        cold.rollup(&q, 1000).len()
    };
    let doc = cold.ingest("DBS bank faces fraud and money laundering charges.");
    assert_eq!(doc.index(), 40);
    assert_eq!(cold.store().len(), 41);
    let q = cold.query(&["Financial Crime"]).unwrap();
    assert!(cold.rollup(&q, 1000).len() > before);
    // …and the extended engine snapshots again.
    let dir2 = temp_dir("stream2");
    cold.save(&dir2).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();
}

#[test]
fn shard_count_does_not_change_answers() {
    // The shard map is a storage layout, not a semantic choice.
    let (kg, engine) = build_engine(80, 11, 1);
    let reference = fingerprint(&engine, &TOPICS);
    for shards in [1u32, 3, 16] {
        let mut config = engine.config().clone();
        config.store.snapshot_shards = shards;
        let dir = temp_dir(&format!("shards{shards}"));
        // Re-save under a different shard count via a rebuilt engine
        // config: save uses config.snapshot_shards.
        let (kg2, engine2) = build_engine(80, 11, shards);
        let _ = kg2;
        engine2.save(&dir).unwrap();
        let cold = NcExplorer::open(&dir, kg.clone(), config).unwrap();
        assert_eq!(fingerprint(&cold, &TOPICS), reference, "shards={shards}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random small corpora round-trip bit-for-bit whatever the corpus
    /// seed, size, and shard count.
    #[test]
    fn random_corpora_roundtrip(
        articles in 5usize..60,
        seed in 0u64..1000,
        shards in 1u32..9,
    ) {
        let (kg, engine) = build_engine(articles, seed, shards);
        let dir = temp_dir(&format!("prop_{articles}_{seed}_{shards}"));
        engine.save(&dir).unwrap();
        let cold = NcExplorer::open(&dir, kg, engine.config().clone()).unwrap();
        prop_assert_eq!(fingerprint(&engine, &TOPICS), fingerprint(&cold, &TOPICS));
        prop_assert_eq!(cold.index().num_postings(), engine.index().num_postings());
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---- corruption: every failure is a typed error ----

fn saved_snapshot(tag: &str) -> (Arc<ncexplorer::kg::KnowledgeGraph>, NcExplorer, PathBuf) {
    let (kg, engine) = build_engine(30, 5, 3);
    let dir = temp_dir(tag);
    engine.save(&dir).unwrap();
    (kg, engine, dir)
}

fn open_err(
    dir: &Path,
    kg: &Arc<ncexplorer::kg::KnowledgeGraph>,
    engine: &NcExplorer,
) -> StoreError {
    NcExplorer::open(dir, kg.clone(), engine.config().clone())
        .err()
        .expect("corrupted snapshot must not open")
}

#[test]
fn flipped_byte_in_any_file_is_detected() {
    let (kg, engine, dir) = saved_snapshot("flip");
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let original = std::fs::read(&path).unwrap();
        // Flip a byte at several positions through the file.
        for frac in [0.1, 0.5, 0.9] {
            let mut bad = original.clone();
            let i = ((bad.len() as f64 * frac) as usize).min(bad.len() - 1);
            bad[i] ^= 0x20;
            std::fs::write(&path, &bad).unwrap();
            let err = open_err(&dir, &kg, &engine);
            assert!(
                matches!(
                    err,
                    StoreError::ChecksumMismatch { .. }
                        | StoreError::Corrupt { .. }
                        | StoreError::Truncated { .. }
                        | StoreError::VersionMismatch { .. }
                        | StoreError::Incompatible { .. }
                ),
                "{name} flip at {frac}: unexpected {err}"
            );
        }
        std::fs::write(&path, &original).unwrap();
        // Restored: opens again.
        NcExplorer::open(&dir, kg.clone(), engine.config().clone()).unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_segment_is_typed_error() {
    let (kg, engine, dir) = saved_snapshot("trunc");
    let path = dir.join("concepts-000.seg");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    let err = open_err(&dir, &kg, &engine);
    assert!(
        matches!(err, StoreError::Truncated { .. }),
        "expected Truncated, got {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_segment_is_typed_error() {
    let (kg, engine, dir) = saved_snapshot("missing");
    std::fs::remove_file(dir.join("entities.seg")).unwrap();
    let err = open_err(&dir, &kg, &engine);
    assert!(
        matches!(err, StoreError::MissingFile { ref file } if file == "entities.seg"),
        "expected MissingFile, got {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn future_format_version_is_refused() {
    let (kg, engine, dir) = saved_snapshot("future");
    // Rewrite the manifest claiming format version 99, with a correct
    // self-checksum so the version gate (not the checksum) is what fires.
    let path = dir.join(MANIFEST_NAME);
    let text = std::fs::read_to_string(&path).unwrap();
    let body = text
        .rsplit_once("manifest_checksum")
        .map(|(b, _)| b.to_string())
        .unwrap()
        .replace("format_version 2", "format_version 99");
    let sum = fnv1a64(body.as_bytes());
    std::fs::write(&path, format!("{body}manifest_checksum {sum:016x}\n")).unwrap();
    let err = open_err(&dir, &kg, &engine);
    assert!(
        matches!(
            err,
            StoreError::VersionMismatch {
                found: 99,
                supported: 2
            }
        ),
        "expected VersionMismatch, got {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_and_foreign_directories_are_not_snapshots() {
    let (kg, engine, dir) = saved_snapshot("foreign");
    let empty = temp_dir("empty");
    std::fs::create_dir_all(&empty).unwrap();
    assert!(matches!(
        open_err(&empty, &kg, &engine),
        StoreError::NotASnapshot { .. }
    ));
    // A directory with a garbage manifest is corrupt, not a panic.
    std::fs::write(empty.join(MANIFEST_NAME), b"\xff\xfe not a manifest").unwrap();
    assert!(matches!(
        open_err(&empty, &kg, &engine),
        StoreError::Corrupt { .. }
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&empty).ok();
}

#[test]
fn wrong_knowledge_graph_is_incompatible() {
    let (_kg, engine, dir) = saved_snapshot("wrongkg");
    let other = Arc::new(generate_kg(&KgGenConfig {
        orphan_entities: 3,
        synth_per_group: 2,
        ..KgGenConfig::default()
    }));
    let err = NcExplorer::open(&dir, other, engine.config().clone())
        .err()
        .expect("foreign KG must be refused");
    assert!(
        matches!(err, StoreError::Incompatible { .. }),
        "expected Incompatible, got {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_is_canonical() {
    // Saving the same engine twice produces byte-identical directories —
    // no iteration-order leakage from hash maps into the format.
    let (kg, engine) = build_engine(40, 9, 4);
    let (dir_a, dir_b) = (temp_dir("canon_a"), temp_dir("canon_b"));
    engine.save(&dir_a).unwrap();
    engine.save(&dir_b).unwrap();
    // And an open → save cycle reproduces the same bytes again.
    let cold = NcExplorer::open(&dir_a, kg, engine.config().clone()).unwrap();
    let dir_c = temp_dir("canon_c");
    cold.save(&dir_c).unwrap();
    for entry in std::fs::read_dir(&dir_a).unwrap() {
        let name = entry.unwrap().file_name();
        let a = std::fs::read(dir_a.join(&name)).unwrap();
        let b = std::fs::read(dir_b.join(&name)).unwrap();
        let c = std::fs::read(dir_c.join(&name)).unwrap();
        assert_eq!(a, b, "{name:?} differs across saves");
        assert_eq!(a, c, "{name:?} differs after an open→save cycle");
    }
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
    std::fs::remove_dir_all(&dir_c).ok();
}

// ---- generation-layered snapshots: delta flush, compaction, lazy ----

/// Rewrites a snapshot manifest through `edit` and recomputes its
/// self-checksum, so only the edited field is at issue when it is read
/// back.
fn resign_manifest(dir: &Path, edit: impl FnOnce(&mut String)) {
    let path = dir.join(MANIFEST_NAME);
    let text = std::fs::read_to_string(&path).unwrap();
    let mut body = text
        .rsplit_once("manifest_checksum")
        .map(|(b, _)| b.to_string())
        .unwrap();
    edit(&mut body);
    let sum = fnv1a64(body.as_bytes());
    std::fs::write(&path, format!("{body}manifest_checksum {sum:016x}\n")).unwrap();
}

/// Exact per-posting equality between two engines, down to f64 bits.
fn assert_postings_identical(a: &NcExplorer, b: &NcExplorer, what: &str) {
    assert_eq!(a.index().num_docs(), b.index().num_docs(), "{what}");
    assert_eq!(a.index().num_postings(), b.index().num_postings(), "{what}");
    let mut concepts: Vec<_> = a.index().indexed_concepts().collect();
    concepts.sort_unstable();
    let mut other: Vec<_> = b.index().indexed_concepts().collect();
    other.sort_unstable();
    assert_eq!(concepts, other, "{what}: indexed concept sets differ");
    for c in concepts {
        let x = a.index().postings(c);
        let y = b.index().postings(c);
        assert_eq!(x.len(), y.len(), "{what}: concept {}", c.raw());
        for (p, q) in x.iter().zip(y) {
            assert_eq!(p.doc, q.doc, "{what}");
            assert_eq!(p.cdr.to_bits(), q.cdr.to_bits(), "{what}");
            assert_eq!(p.cdro.to_bits(), q.cdro.to_bits(), "{what}");
            assert_eq!(p.cdrc.to_bits(), q.cdrc.to_bits(), "{what}");
            assert_eq!(p.pivot, q.pivot, "{what}");
        }
    }
}

#[test]
fn flush_after_100_article_ingest_writes_only_deltas() {
    let (kg, mut engine) = build_engine(20, 17, 3);
    let dir = temp_dir("delta100");
    engine.save(&dir).unwrap();

    // Remember every base file byte-for-byte.
    let base_files: Vec<(String, Vec<u8>)> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| {
            let p = e.unwrap().path();
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read(&p).unwrap(),
            )
        })
        .collect();

    // A 100-article ingest stream (realistic bodies from the generator).
    let fresh = generate_corpus(
        &kg,
        &CorpusConfig {
            articles: 100,
            seed: 918,
            ..CorpusConfig::default()
        },
    );
    for a in fresh.store.iter() {
        engine.ingest_article(a.source, a.title.clone(), a.body.clone(), a.published);
    }

    let outcome = engine.flush_delta(&dir).unwrap();
    assert_eq!(outcome.flushed_docs, 100);
    assert_eq!(outcome.generation, Some(1));
    assert_eq!(outcome.generations, 2);

    // No base file was rewritten — not even touched.
    for (name, before) in &base_files {
        if name == MANIFEST_NAME {
            continue; // the manifest is the one legitimate rewrite
        }
        let now = std::fs::read(dir.join(name)).unwrap();
        assert_eq!(&now, before, "{name} was rewritten by a delta flush");
    }
    // And everything new carries the delta-generation infix.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        if !base_files.iter().any(|(n, _)| *n == name) {
            assert!(
                name.contains("-g001"),
                "unexpected non-delta file {name} after flush"
            );
        }
    }

    // The layered snapshot opens bit-for-bit identical to the engine.
    let cold = NcExplorer::open(&dir, kg, engine.config().clone()).unwrap();
    assert_postings_identical(&engine, &cold, "layered cold open");
    assert_eq!(fingerprint(&engine, &TOPICS), fingerprint(&cold, &TOPICS));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flush_with_no_backlog_is_a_noop_and_backwards_flush_is_refused() {
    let (kg, mut engine) = build_engine(10, 2, 2);
    let dir = temp_dir("noop");
    engine.save(&dir).unwrap();
    let idle = engine.flush_delta(&dir).unwrap();
    assert_eq!(idle.flushed_docs, 0);
    assert_eq!(idle.generation, None);
    assert_eq!(idle.generations, 1);

    // A snapshot holding MORE documents than the engine is not a prefix.
    engine.ingest("A bank fraud story to advance the snapshot.");
    engine.flush_delta(&dir).unwrap();
    let (_, stale) = build_engine(10, 2, 2);
    let err = stale.flush_delta(&dir).unwrap_err();
    assert!(
        matches!(err, StoreError::Incompatible { .. }),
        "expected Incompatible, got {err}"
    );
    let _ = kg;
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Random corpora under random ingest/flush/compact interleavings:
    /// the layered open, the post-compaction open, and a monolithic
    /// save of the same engine must all be bit-for-bit identical.
    #[test]
    fn random_interleavings_agree_bit_for_bit(
        articles in 3usize..25,
        seed in 0u64..300,
        ops in prop::collection::vec(0u8..3, 1..8),
    ) {
        let (kg, mut engine) = build_engine(articles, seed, 3);
        let dir = temp_dir(&format!("ilv_{articles}_{seed}_{}", ops.len()));
        engine.save(&dir).unwrap();
        for (i, op) in ops.iter().enumerate() {
            match op {
                0 => {
                    engine.ingest(&format!(
                        "Interleaved wire {i}: a bank faces fraud charges."
                    ));
                }
                1 => {
                    engine.flush_delta(&dir).unwrap();
                }
                _ => {
                    NcExplorer::compact(&dir, &kg).unwrap();
                }
            }
        }
        engine.flush_delta(&dir).unwrap(); // capture any tail backlog
        let live = fingerprint(&engine, &TOPICS);

        let layered = NcExplorer::open(&dir, kg.clone(), engine.config().clone()).unwrap();
        assert_postings_identical(&engine, &layered, "layered");
        prop_assert_eq!(&fingerprint(&layered, &TOPICS), &live);

        let mono_dir = temp_dir(&format!("ilv_mono_{articles}_{seed}_{}", ops.len()));
        engine.save(&mono_dir).unwrap();
        let mono = NcExplorer::open(&mono_dir, kg.clone(), engine.config().clone()).unwrap();
        assert_postings_identical(&engine, &mono, "monolithic");
        prop_assert_eq!(&fingerprint(&mono, &TOPICS), &live);

        NcExplorer::compact(&dir, &kg).unwrap();
        let compacted = NcExplorer::open(&dir, kg.clone(), engine.config().clone()).unwrap();
        assert_postings_identical(&engine, &compacted, "compacted");
        prop_assert_eq!(&fingerprint(&compacted, &TOPICS), &live);
        // A compacted snapshot is a single generation again.
        let snap = Snapshot::open(&dir).unwrap();
        prop_assert_eq!(snap.manifest().generations.len(), 1);

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&mono_dir).ok();
    }
}

/// A layered snapshot (base + deltas) for the corruption matrix.
fn layered_snapshot(tag: &str) -> (Arc<ncexplorer::kg::KnowledgeGraph>, NcExplorer, PathBuf) {
    let (kg, mut engine) = build_engine(15, 5, 3);
    let dir = temp_dir(tag);
    engine.save(&dir).unwrap();
    for round in 0..2 {
        for i in 0..3 {
            engine.ingest(&format!("Layered {tag} {round}/{i}: fraud at a bank."));
        }
        engine.flush_delta(&dir).unwrap();
    }
    (kg, engine, dir)
}

#[test]
fn flipped_byte_in_any_delta_file_is_detected() {
    let (kg, engine, dir) = layered_snapshot("gflip");
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if !name.contains("-g") && name != MANIFEST_NAME {
            continue; // base files are covered by the monolithic matrix
        }
        let original = std::fs::read(&path).unwrap();
        for frac in [0.1, 0.5, 0.9] {
            let mut bad = original.clone();
            let i = ((bad.len() as f64 * frac) as usize).min(bad.len() - 1);
            bad[i] ^= 0x20;
            std::fs::write(&path, &bad).unwrap();
            let err = open_err(&dir, &kg, &engine);
            assert!(
                matches!(
                    err,
                    StoreError::ChecksumMismatch { .. }
                        | StoreError::Corrupt { .. }
                        | StoreError::Truncated { .. }
                        | StoreError::VersionMismatch { .. }
                        | StoreError::Incompatible { .. }
                ),
                "{name} flip at {frac}: unexpected {err}"
            );
        }
        std::fs::write(&path, &original).unwrap();
        NcExplorer::open(&dir, kg.clone(), engine.config().clone()).unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_delta_segment_is_typed_error() {
    let (kg, engine, dir) = layered_snapshot("gtrunc");
    let path = dir.join("doclists-g001.seg");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    let err = open_err(&dir, &kg, &engine);
    assert!(
        matches!(err, StoreError::Truncated { .. }),
        "expected Truncated, got {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_middle_generation_is_typed_error() {
    let (kg, engine, dir) = layered_snapshot("gmiss");
    std::fs::remove_file(dir.join("entities-g001.seg")).unwrap();
    let err = open_err(&dir, &kg, &engine);
    assert!(
        matches!(err, StoreError::MissingFile { ref file } if file == "entities-g001.seg"),
        "expected MissingFile, got {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flipped_generation_number_in_manifest_is_corrupt() {
    let (kg, engine, dir) = layered_snapshot("gnum");
    // Claim generation 1 is generation 5: its files now reference a
    // generation that is not in the stack.
    resign_manifest(&dir, |body| {
        *body = body
            .lines()
            .map(|l| {
                if let Some(rest) = l.strip_prefix("generation 1 ") {
                    format!("generation 5 {rest}\n")
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
    });
    let err = open_err(&dir, &kg, &engine);
    assert!(
        matches!(err, StoreError::Corrupt { .. }),
        "expected Corrupt, got {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dropped_generation_line_is_corrupt() {
    let (kg, engine, dir) = layered_snapshot("gdrop");
    // Remove the middle generation's line: its files become orphans.
    resign_manifest(&dir, |body| {
        *body = body
            .lines()
            .filter(|l| !l.starts_with("generation 1 "))
            .map(|l| format!("{l}\n"))
            .collect();
    });
    let err = open_err(&dir, &kg, &engine);
    assert!(
        matches!(err, StoreError::Corrupt { .. }),
        "expected Corrupt, got {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_manifest_after_torn_compaction_is_typed_error() {
    // A compaction that committed its manifest and swept the old
    // generations, but a backup/restore race brought the OLD manifest
    // back: it now references files the sweep removed. That must be a
    // typed missing-file error, never a partial open.
    let (kg, engine, dir) = layered_snapshot("gstale");
    let stale = std::fs::read(dir.join(MANIFEST_NAME)).unwrap();
    NcExplorer::compact(&dir, &kg).unwrap();
    std::fs::write(dir.join(MANIFEST_NAME), &stale).unwrap();
    let err = open_err(&dir, &kg, &engine);
    assert!(
        matches!(err, StoreError::MissingFile { .. }),
        "expected MissingFile, got {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stray_generation_files_are_ignored_and_reported() {
    // Regression: generation discovery must come from the manifest
    // alone. A foreign `concepts-g999-000.seg` dropped into the
    // directory — even a structurally valid segment — must not be
    // merged into query results, only reported as a stray.
    let (kg, engine, dir) = layered_snapshot("gstray");
    let reference = fingerprint(&engine, &TOPICS);

    // A garbage stray and a valid-looking one (copied real segment).
    std::fs::write(dir.join("concepts-g999-000.seg"), b"not a segment at all").unwrap();
    std::fs::copy(dir.join("doclists-g001.seg"), dir.join("doclists-g999.seg")).unwrap();

    let cold = NcExplorer::open(&dir, kg.clone(), engine.config().clone()).unwrap();
    assert_eq!(
        fingerprint(&cold, &TOPICS),
        reference,
        "stray generation files leaked into query results"
    );
    assert_postings_identical(&engine, &cold, "stray-laden open");

    let snap = Snapshot::open(&dir).unwrap();
    let mut strays = snap.stray_files().unwrap();
    strays.sort();
    assert_eq!(
        strays,
        vec![
            "concepts-g999-000.seg".to_string(),
            "doclists-g999.seg".to_string()
        ]
    );

    // Compaction sweeps the strays along with the old generations.
    NcExplorer::compact(&dir, &kg).unwrap();
    let snap = Snapshot::open(&dir).unwrap();
    assert_eq!(snap.stray_files().unwrap(), Vec::<String>::new());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn v1_monolithic_manifest_still_opens() {
    // Forward compatibility with pre-layering snapshots: rewrite a
    // single-generation v2 manifest into the exact v1 byte layout (no
    // generation lines, four-column file entries) and open it.
    let (kg, engine, dir) = saved_snapshot("v1compat");
    let reference = fingerprint(&engine, &TOPICS);
    resign_manifest(&dir, |body| {
        *body = body
            .lines()
            .filter(|l| !l.starts_with("generation "))
            .map(|l| {
                if l == "format_version 2" {
                    "format_version 1\n".to_string()
                } else if let Some(rest) = l.strip_prefix("file ") {
                    // name kind gen bytes checksum → drop the gen column
                    let p: Vec<&str> = rest.split_ascii_whitespace().collect();
                    format!("file {} {} {} {}\n", p[0], p[1], p[3], p[4])
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
    });
    let cold = NcExplorer::open(&dir, kg, engine.config().clone()).unwrap();
    assert_eq!(fingerprint(&cold, &TOPICS), reference);
    assert_postings_identical(&engine, &cold, "v1 compat open");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lazy_open_matches_eager_and_decodes_on_touch() {
    let (kg, engine, dir) = layered_snapshot("lazy");
    let mut lazy = NcExplorer::open_lazy(&dir, kg, engine.config().clone()).unwrap();

    // Nothing decoded yet, but the stats answer from the manifest.
    assert_eq!(lazy.index().lazy_shards_materialized(), Some(0));
    assert_eq!(lazy.index().num_docs(), engine.index().num_docs());
    assert_eq!(lazy.index().num_postings(), engine.index().num_postings());
    assert_eq!(
        lazy.index().num_indexed_concepts(),
        engine.index().num_indexed_concepts()
    );

    // Queries force exactly the shards they touch — and the answers are
    // bit-for-bit the eager ones.
    assert_eq!(fingerprint(&lazy, &TOPICS), fingerprint(&engine, &TOPICS));
    assert!(lazy.index().lazy_shards_materialized().unwrap() > 0);
    assert_postings_identical(&engine, &lazy, "lazy open");

    // A lazily opened engine still ingests: the touched shard is
    // drained into the eager table and the stream keeps extending.
    let before = lazy.index().num_docs();
    lazy.ingest("A lazily opened engine hears about new bank fraud.");
    assert_eq!(lazy.index().num_docs(), before + 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn document_ids_stay_aligned_after_reload() {
    let (kg, engine) = build_engine(25, 13, 2);
    let dir = temp_dir("align");
    engine.save(&dir).unwrap();
    let cold = NcExplorer::open(&dir, kg, engine.config().clone()).unwrap();
    for i in 0..engine.store().len() {
        let d = DocId::from_index(i);
        assert_eq!(engine.document(d).title, cold.document(d).title);
        assert_eq!(
            engine.index().concepts_of_doc(d),
            cold.index().concepts_of_doc(d)
        );
        assert_eq!(
            engine.index().entity_index.entities_of(d),
            cold.index().entity_index.entities_of(d)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
