//! Cross-crate property tests: invariants that must hold for *any* input,
//! exercised through the public facade.

use ncexplorer::eval::ir::{average_precision, precision_at_k, recall_at_k};
use ncexplorer::eval::ndcg::{dcg_at_k, ndcg_at_k};
use ncexplorer::index::TopK;
use ncexplorer::kg::{GraphBuilder, InstanceId};
use ncexplorer::text::stemmer::stem;
use ncexplorer::text::tokenizer::tokenize;
use proptest::prelude::*;

proptest! {
    /// TopK returns exactly the k best by score, matching a full sort.
    #[test]
    fn topk_matches_full_sort(
        items in prop::collection::vec((0u32..1000, 0.0f64..100.0), 0..60),
        k in 0usize..20,
    ) {
        // Deduplicate keys so the comparison is order-unambiguous.
        let mut seen = std::collections::HashSet::new();
        let items: Vec<(u32, f64)> = items
            .into_iter()
            .filter(|(key, _)| seen.insert(*key))
            .collect();
        let mut top = TopK::new(k);
        for &(key, score) in &items {
            top.push(key, score);
        }
        let got = top.into_sorted_vec();

        let mut expect = items.clone();
        expect.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap()
                .then_with(|| a.0.cmp(&b.0))
        });
        expect.truncate(k);
        prop_assert_eq!(got, expect);
    }

    /// NDCG is always within [0, 1] and equals 1 for a descending list.
    #[test]
    fn ndcg_bounded_and_sorted_is_perfect(
        mut rels in prop::collection::vec(0.0f64..5.0, 1..30),
        k in 1usize..15,
    ) {
        let n = ndcg_at_k(&rels, k);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&n), "ndcg {n}");
        rels.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let sorted = ndcg_at_k(&rels, k);
        prop_assert!((sorted - 1.0).abs() < 1e-9, "sorted ndcg {sorted}");
    }

    /// DCG never decreases when a rating increases.
    #[test]
    fn dcg_monotone_in_ratings(
        rels in prop::collection::vec(0.0f64..5.0, 1..20),
        idx in 0usize..20,
        bump in 0.1f64..2.0,
    ) {
        let idx = idx % rels.len();
        let mut better = rels.clone();
        better[idx] += bump;
        prop_assert!(dcg_at_k(&better, rels.len()) > dcg_at_k(&rels, rels.len()));
    }

    /// Precision and recall are bounded and consistent with each other.
    #[test]
    fn precision_recall_bounds(
        flags in prop::collection::vec(any::<bool>(), 0..40),
        k in 1usize..50,
    ) {
        let total = flags.iter().filter(|&&f| f).count();
        let p = precision_at_k(&flags, k);
        let r = recall_at_k(&flags, k, total);
        let ap = average_precision(&flags, total);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ap));
        // Retrieving everything recalls everything.
        prop_assert_eq!(recall_at_k(&flags, flags.len().max(1), total), 1.0);
    }

    /// Stemming is idempotent: stem(stem(w)) == stem(w).
    #[test]
    fn stemmer_idempotent(word in "[a-z]{1,15}") {
        let once = stem(&word);
        let twice = stem(&once);
        prop_assert_eq!(once, twice);
    }

    /// Tokenization spans are in-bounds, ordered, and non-overlapping.
    #[test]
    fn tokenizer_spans_well_formed(text in ".{0,200}") {
        let tokens = tokenize(&text);
        let mut prev_end = 0;
        for t in &tokens {
            prop_assert!(t.start >= prev_end, "overlap at {}", t.start);
            prop_assert!(t.end <= text.len());
            prop_assert!(t.start < t.end);
            prop_assert!(text.is_char_boundary(t.start) && text.is_char_boundary(t.end));
            prop_assert!(!t.lower.is_empty());
            prev_end = t.end;
        }
    }

    /// KG builder invariants hold for arbitrary edge/membership soups:
    /// bidirectedness, sorted rows, Ψ/Ψ⁻¹ consistency.
    #[test]
    fn kg_builder_invariants(
        edges in prop::collection::vec((0u32..12, 0u32..12), 0..40),
        members in prop::collection::vec((0u32..4, 0u32..12), 0..30),
    ) {
        let mut b = GraphBuilder::new();
        let nodes: Vec<InstanceId> = (0..12).map(|i| b.instance(&format!("n{i}"))).collect();
        let concepts: Vec<_> = (0..4).map(|i| b.concept(&format!("c{i}"))).collect();
        for (u, v) in edges {
            b.fact(nodes[u as usize], "r", nodes[v as usize]);
        }
        for (c, v) in members {
            b.member(concepts[c as usize], nodes[v as usize]);
        }
        let kg = b.build();

        // Bidirected: u in N(v) iff v in N(u); rows sorted and self-loop free.
        for u in kg.instances() {
            let row = kg.neighbors(u);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            for &v in row {
                prop_assert!(v != u, "no self loops");
                prop_assert!(kg.has_edge(v, u), "bidirected");
            }
        }
        // Ψ and Ψ⁻¹ agree.
        for c in kg.concepts() {
            for &v in kg.members(c) {
                prop_assert!(kg.concepts_of(v).contains(&c));
            }
        }
        for v in kg.instances() {
            for &c in kg.concepts_of(v) {
                prop_assert!(kg.is_member(c, v));
            }
        }
        // Edge count parity: every undirected fact appears exactly twice.
        prop_assert_eq!(kg.num_instance_edges() % 2, 0);
    }

    /// Snapshot roundtrip preserves arbitrary generated graphs.
    #[test]
    fn snapshot_roundtrip_arbitrary(
        edges in prop::collection::vec((0u32..10, 0u32..10), 0..25),
        members in prop::collection::vec((0u32..3, 0u32..10), 0..15),
    ) {
        let mut b = GraphBuilder::new();
        let nodes: Vec<InstanceId> = (0..10).map(|i| b.instance(&format!("n{i}"))).collect();
        let concepts: Vec<_> = (0..3).map(|i| b.concept(&format!("c{i}"))).collect();
        for (u, v) in edges {
            b.fact(nodes[u as usize], "rel", nodes[v as usize]);
        }
        for (c, v) in members {
            b.member(concepts[c as usize], nodes[v as usize]);
        }
        let kg = b.build();
        let mut buf = Vec::new();
        ncexplorer::kg::snapshot::save(&kg, &mut buf).unwrap();
        let back = ncexplorer::kg::snapshot::load(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(kg.num_instances(), back.num_instances());
        prop_assert_eq!(kg.num_instance_edges(), back.num_instance_edges());
        prop_assert_eq!(kg.num_memberships(), back.num_memberships());
        for u in kg.instances() {
            prop_assert_eq!(kg.neighbors(u), back.neighbors(u));
            prop_assert_eq!(kg.concepts_of(u), back.concepts_of(u));
        }
    }
}

mod reach_props {
    use ncexplorer::kg::traversal::{hop_distance, DistMap};
    use ncexplorer::kg::{GraphBuilder, InstanceId};
    use ncexplorer::reach::oracle::compute_target_distances;
    use ncexplorer::reach::KHopIndex;
    use proptest::prelude::*;

    proptest! {
        /// The target-distance oracle agrees with direct BFS distances.
        #[test]
        fn oracle_matches_bfs(
            edges in prop::collection::vec((0u32..10, 0u32..10), 1..30),
            tau in 1u8..4,
        ) {
            let mut b = GraphBuilder::new();
            let nodes: Vec<InstanceId> =
                (0..10).map(|i| b.instance(&format!("n{i}"))).collect();
            for (u, v) in edges {
                b.fact(nodes[u as usize], "r", nodes[v as usize]);
            }
            let kg = b.build();
            let mut probe = DistMap::new(kg.num_instances());
            for &target in nodes.iter().take(3) {
                let td = compute_target_distances(&kg, target, tau);
                for &w in &nodes {
                    let expect = hop_distance(&kg, w, target, tau, &mut probe);
                    prop_assert_eq!(td.get(w), expect, "w={:?} target={:?}", w, target);
                }
            }
        }

        /// Landmark-count choice never changes reachability answers.
        #[test]
        fn khop_landmark_count_irrelevant_to_answers(
            edges in prop::collection::vec((0u32..10, 0u32..10), 1..30),
            k in 0u8..4,
        ) {
            let mut b = GraphBuilder::new();
            let nodes: Vec<InstanceId> =
                (0..10).map(|i| b.instance(&format!("n{i}"))).collect();
            for (u, v) in edges {
                b.fact(nodes[u as usize], "r", nodes[v as usize]);
            }
            let kg = b.build();
            let idx0 = KHopIndex::build(&kg, 0, 3);
            let idx4 = KHopIndex::build(&kg, 4, 3);
            let mut s0 = DistMap::new(kg.num_instances());
            let mut s4 = DistMap::new(kg.num_instances());
            for &u in nodes.iter().take(4) {
                for &v in nodes.iter().rev().take(4) {
                    prop_assert_eq!(
                        idx0.reachable_within(&kg, u, v, k, &mut s0),
                        idx4.reachable_within(&kg, u, v, k, &mut s4)
                    );
                }
            }
        }
    }
}

mod ontology_props {
    use ncexplorer::kg::{ontology, GraphBuilder};
    use proptest::prelude::*;

    proptest! {
        /// `subsumes(a, b)` is exactly "a ∈ ancestors(b) ∪ {b}".
        #[test]
        fn subsumption_consistent_with_ancestors(
            broader in prop::collection::vec((0u32..8, 0u32..8), 0..20),
        ) {
            let mut b = GraphBuilder::new();
            let concepts: Vec<_> = (0..8).map(|i| b.concept(&format!("c{i}"))).collect();
            for (child, parent) in broader {
                b.broader(concepts[child as usize], concepts[parent as usize]);
            }
            let kg = b.build();
            for &x in &concepts {
                let ancestors = ontology::ancestors(&kg, x);
                for &y in &concepts {
                    let expect = x == y || ancestors.contains(&y);
                    prop_assert_eq!(ontology::subsumes(&kg, y, x), expect);
                }
            }
        }

        /// Extended members ⊇ direct members, and every extended member
        /// belongs to the concept or a descendant.
        #[test]
        fn extended_members_closure(
            broader in prop::collection::vec((0u32..6, 0u32..6), 0..12),
            members in prop::collection::vec((0u32..6, 0u32..10), 0..25),
        ) {
            let mut b = GraphBuilder::new();
            let concepts: Vec<_> = (0..6).map(|i| b.concept(&format!("c{i}"))).collect();
            let nodes: Vec<_> = (0..10).map(|i| b.instance(&format!("n{i}"))).collect();
            for (child, parent) in broader {
                b.broader(concepts[child as usize], concepts[parent as usize]);
            }
            for (c, v) in members {
                b.member(concepts[c as usize], nodes[v as usize]);
            }
            let kg = b.build();
            for &c in &concepts {
                let ext = ontology::extended_members(&kg, c);
                for v in kg.members(c) {
                    prop_assert!(ext.contains(v));
                }
                let descendants = ontology::descendants(&kg, c);
                for v in &ext {
                    let direct = kg.is_member(c, *v);
                    let via_desc = descendants.iter().any(|&d| kg.is_member(d, *v));
                    prop_assert!(direct || via_desc);
                }
            }
        }
    }
}
