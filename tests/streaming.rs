//! Streaming-ingestion integration tests: building the index one article
//! at a time must agree with the batch build on everything that does not
//! depend on global document frequencies.

use ncexplorer::core::{NcExplorer, NcxConfig};
use ncexplorer::datagen::{generate_corpus, generate_kg, CorpusConfig, KgGenConfig};
use ncexplorer::index::DocumentStore;
use std::sync::Arc;

fn fixture(
    n: usize,
) -> (
    Arc<ncexplorer::kg::KnowledgeGraph>,
    ncexplorer::datagen::GeneratedCorpus,
) {
    let kg = Arc::new(generate_kg(&KgGenConfig::default()));
    let corpus = generate_corpus(
        &kg,
        &CorpusConfig {
            articles: n,
            ..CorpusConfig::default()
        },
    );
    (kg, corpus)
}

fn config() -> NcxConfig {
    NcxConfig {
        samples: 15,
        parallelism: ncexplorer::core::Parallelism::sequential(),
        ..NcxConfig::default()
    }
}

#[test]
fn streamed_matching_agrees_with_batch() {
    let (kg, corpus) = fixture(60);
    // Batch build (the engine owns the store, so the streamed engine
    // replays from the batch engine's copy).
    let batch = NcExplorer::build(kg.clone(), corpus.store, config());
    // Streamed build: empty store, then ingest every article in order.
    let mut streamed = NcExplorer::build(kg.clone(), DocumentStore::new(), config());
    for article in batch.store().iter() {
        streamed.ingest(&article.full_text());
    }
    assert_eq!(streamed.index().num_docs(), batch.index().num_docs());
    assert_eq!(streamed.store().len(), batch.store().len());

    // Matching (which documents match which concepts) is df-independent,
    // so the posting *sets* must be identical even though scores differ.
    for c in kg.concepts() {
        let batch_docs: Vec<u32> = batch
            .index()
            .postings(c)
            .iter()
            .map(|p| p.doc.raw())
            .collect();
        let stream_docs: Vec<u32> = streamed
            .index()
            .postings(c)
            .iter()
            .map(|p| p.doc.raw())
            .collect();
        assert_eq!(
            batch_docs,
            stream_docs,
            "posting sets differ for {}",
            kg.concept_label(c)
        );
    }

    // Roll-up result *sets* agree for conjunctive queries.
    for names in [
        &["Financial Crime"][..],
        &["Lawsuits", "Technology Company"][..],
    ] {
        let qb = batch.query(names).unwrap();
        let qs = streamed.query(names).unwrap();
        let mut b: Vec<u32> = batch
            .rollup(&qb, 1000)
            .into_iter()
            .map(|h| h.doc.raw())
            .collect();
        let mut s: Vec<u32> = streamed
            .rollup(&qs, 1000)
            .into_iter()
            .map(|h| h.doc.raw())
            .collect();
        b.sort_unstable();
        s.sort_unstable();
        assert_eq!(b, s, "matched sets differ for {names:?}");
    }
}

#[test]
fn ingest_empty_text_is_harmless() {
    let (kg, _) = fixture(0);
    let mut engine = NcExplorer::build(kg, DocumentStore::new(), config());
    let doc = engine.ingest("");
    assert_eq!(doc.index(), 0);
    assert_eq!(engine.index().num_docs(), 1);
    assert!(engine.index().concepts_of_doc(doc).is_empty());
}

#[test]
fn ingested_docs_rank_by_relevance() {
    let (kg, _) = fixture(0);
    let mut engine = NcExplorer::build(kg.clone(), DocumentStore::new(), config());
    // A fraud-heavy article and a barely-related one.
    let heavy = engine.ingest(
        "FTX fraud scandal deepens. Prosecutors cite fraud and money laundering. \
         Binance also faces fraud claims.",
    );
    let light = engine.ingest("Microsoft mentioned fraud once in its annual filing.");
    let q = engine.query(&["Financial Crime"]).unwrap();
    let hits = engine.rollup(&q, 10);
    assert_eq!(hits.len(), 2);
    assert_eq!(hits[0].doc, heavy, "fraud-heavy doc must rank first");
    assert_eq!(hits[1].doc, light);
}

#[test]
fn drilldown_sees_streamed_documents() {
    let (kg, _) = fixture(0);
    let mut engine = NcExplorer::build(kg.clone(), DocumentStore::new(), config());
    engine.ingest("The SEC sued FTX over fraud. Binance faces money laundering probes.");
    engine.ingest("CFTC settled fraud claims against Kraken.");
    let q = engine.query(&["Bitcoin Exchange"]).unwrap();
    let subs = engine.drilldown(&q, 10);
    let labels: Vec<&str> = subs.iter().map(|s| kg.concept_label(s.concept)).collect();
    assert!(
        labels.contains(&"Financial Crime") || labels.contains(&"Regulator"),
        "{labels:?}"
    );
}
