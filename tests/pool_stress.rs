//! Worker-pool stress: scheduling races, shutdown deadlocks, and
//! cross-mode result stability under the conditions most likely to
//! expose them — a pool much wider than the machine, many repeated
//! small queries, concurrent callers, and rapid engine build/drop
//! cycles.
//!
//! CI runs this suite in release with `NCX_POOL_STRESS_ITERS` raised
//! (see `.github/workflows/ci.yml`); the default iteration count keeps
//! the tier-1 debug run cheap.

use ncexplorer::core::{NcExplorer, NcxConfig, Parallelism};
use ncexplorer::datagen::{generate_corpus, generate_kg, CorpusConfig, KgGenConfig};
use std::sync::Arc;

fn iters(default: usize) -> usize {
    std::env::var("NCX_POOL_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn build_engine(articles: usize, width: usize) -> NcExplorer {
    let kg = Arc::new(generate_kg(&KgGenConfig::default()));
    let corpus = generate_corpus(
        &kg,
        &CorpusConfig {
            articles,
            ..CorpusConfig::default()
        },
    );
    NcExplorer::build(
        kg,
        corpus.store,
        NcxConfig {
            samples: 5,
            parallelism: Parallelism::Fixed(width),
            ..NcxConfig::default()
        },
    )
}

/// Many threads hammer small queries through one wide pool; every
/// result must equal the sequential reference computed up front.
#[test]
fn concurrent_small_queries_match_sequential_reference() {
    let mut engine = build_engine(150, 8);
    let topics = ["Financial Crime", "Elections", "Bank"];

    engine.set_parallelism(Parallelism::sequential()).unwrap();
    let reference: Vec<_> = topics
        .iter()
        .map(|t| {
            let q = engine.query(&[t]).unwrap();
            (q.clone(), engine.rollup(&q, 20), engine.drilldown(&q, 10))
        })
        .collect();
    engine.set_parallelism(Parallelism::Fixed(8)).unwrap();

    let n = iters(25);
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let engine = &engine;
            let reference = &reference;
            scope.spawn(move || {
                for i in 0..n {
                    let (q, hits, subs) = &reference[(worker + i) % reference.len()];
                    assert_eq!(&engine.rollup(q, 20), hits, "roll-up diverged");
                    let got = engine.drilldown(q, 10);
                    assert_eq!(got.len(), subs.len(), "drill-down diverged");
                    for (a, b) in got.iter().zip(subs) {
                        assert_eq!(a.concept, b.concept, "drill-down rank diverged");
                        assert_eq!(a.matching_docs, b.matching_docs);
                        assert_eq!(a.distinct_entities, b.distinct_entities);
                    }
                }
            });
        }
    });
}

/// Rapid build → query → drop cycles: every drop joins the pool's
/// parked workers, so a shutdown deadlock hangs this test immediately.
#[test]
fn rapid_build_drop_cycles_shut_down_cleanly() {
    for _ in 0..iters(8) {
        let engine = build_engine(40, 8);
        let q = engine.query(&["Financial Crime"]).unwrap();
        assert!(!engine.rollup(&q, 5).is_empty());
        drop(engine);
    }
}

/// Flipping the execution width between queries must never change
/// roll-up results or wedge the pool.
#[test]
fn runtime_width_switching_is_stable() {
    let mut engine = build_engine(150, 8);
    let q = engine.query(&["Financial Crime"]).unwrap();
    engine.set_parallelism(Parallelism::sequential()).unwrap();
    let reference = engine.rollup(&q, 20);
    for i in 0..iters(25) {
        let width = [1, 2, 8, 5][i % 4];
        engine.set_parallelism(Parallelism::Fixed(width)).unwrap();
        assert_eq!(
            engine.rollup(&q, 20),
            reference,
            "width {width} diverged at iteration {i}"
        );
    }
}
