//! End-to-end integration: generated KG → generated corpus → engine →
//! roll-up/drill-down, validated against the generation ground truth.

use ncexplorer::core::{NcExplorer, NcxConfig};
use ncexplorer::datagen::{generate_corpus, generate_kg, CorpusConfig, KgGenConfig};
use std::sync::Arc;

fn engine_fixture(
    articles: usize,
    samples: u32,
) -> (
    Arc<ncexplorer::kg::KnowledgeGraph>,
    ncexplorer::datagen::GeneratedCorpus,
    NcExplorer,
) {
    let kg = Arc::new(generate_kg(&KgGenConfig::default()));
    let corpus = generate_corpus(
        &kg,
        &CorpusConfig {
            articles,
            ..CorpusConfig::default()
        },
    );
    // The engine owns its store; keep the generated corpus alongside for
    // the ground-truth grades.
    let engine = NcExplorer::build(
        kg.clone(),
        corpus.store.clone(),
        NcxConfig {
            samples,
            ..NcxConfig::default()
        },
    );
    (kg, corpus, engine)
}

#[test]
fn rollup_hits_are_topically_relevant() {
    let (kg, corpus, engine) = engine_fixture(250, 20);
    for topic in ["Financial Crime", "Lawsuits", "Elections"] {
        let q = engine.query(&[topic]).unwrap();
        let hits = engine.rollup(&q, 5);
        assert!(!hits.is_empty(), "{topic} must match documents");
        let tid = kg.concept_by_name(topic).unwrap();
        // Top hits should be mostly ground-truth relevant.
        let relevant = hits
            .iter()
            .filter(|h| corpus.relevance_to_concept(&kg, tid, h.doc) > 0.0)
            .count();
        assert!(
            relevant * 2 >= hits.len(),
            "{topic}: only {relevant}/{} top hits are truth-relevant",
            hits.len()
        );
    }
}

#[test]
fn conjunctive_queries_narrow_results() {
    let (kg, _corpus, engine) = engine_fixture(250, 20);
    let broad = engine.query(&["Financial Crime"]).unwrap();
    let narrow = engine.query(&["Financial Crime", "Bank"]).unwrap();
    let broad_hits = engine.rollup(&broad, 1000);
    let narrow_hits = engine.rollup(&narrow, 1000);
    assert!(narrow_hits.len() <= broad_hits.len());
    assert!(!narrow_hits.is_empty());
    let _ = kg;
}

#[test]
fn drilldown_suggestions_lead_somewhere() {
    let (kg, _corpus, engine) = engine_fixture(250, 20);
    let q = engine.query(&["Financial Crime"]).unwrap();
    let subs = engine.drilldown(&q, 5);
    assert!(!subs.is_empty());
    for s in &subs {
        // Drilling into a suggestion must produce a non-empty result set.
        let narrowed = q.with(s.concept);
        let hits = engine.rollup(&narrowed, 10);
        assert!(
            !hits.is_empty(),
            "drilling into {} must keep results",
            kg.concept_label(s.concept)
        );
        assert!(!q.contains(s.concept), "suggestion must be new");
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let (_, _, e1) = engine_fixture(120, 15);
    let (_, _, e2) = engine_fixture(120, 15);
    let q1 = e1.query(&["Lawsuits", "Technology Company"]).unwrap();
    let q2 = e2.query(&["Lawsuits", "Technology Company"]).unwrap();
    let h1 = e1.rollup(&q1, 10);
    let h2 = e2.rollup(&q2, 10);
    assert_eq!(h1.len(), h2.len());
    for (a, b) in h1.iter().zip(&h2) {
        assert_eq!(a.doc, b.doc);
        assert_eq!(a.score, b.score);
    }
}

#[test]
fn broad_concept_rollup_via_taxonomy() {
    let (kg, _corpus, engine) = engine_fixture(150, 15);
    // "Company" has no direct instances in articles' Ψ⁻¹ (entities carry
    // leaf concepts), so matching must go through descendants.
    let q = engine.query(&["Company"]).unwrap();
    let hits = engine.rollup(&q, 10);
    assert!(!hits.is_empty(), "edge-concept fallback must kick in");
    let company = kg.concept_by_name("Company").unwrap();
    for h in &hits {
        assert_eq!(h.matches[0].concept, company);
        assert_ne!(h.matches[0].via, company);
    }
}

#[test]
fn entity_journey_matches_fig1() {
    let (kg, _corpus, engine) = engine_fixture(150, 15);
    // FTX -> Bitcoin Exchange roll-up options.
    let ftx = kg.instance_by_name("FTX").unwrap();
    let opts = engine.rollup_options(ftx, 2);
    let labels: Vec<&str> = opts.iter().map(|&c| kg.concept_label(c)).collect();
    // Direct types first (Bitcoin Exchange plus the broad dual-membership
    // type Company), then the broader climb.
    assert!(labels[..2].contains(&"Bitcoin Exchange"), "{labels:?}");
    assert!(labels.contains(&"Company"));
}

#[test]
fn explanations_cover_top_results() {
    let (kg, _corpus, engine) = engine_fixture(150, 15);
    let q = engine.query(&["Financial Crime"]).unwrap();
    let crime = kg.concept_by_name("Financial Crime").unwrap();
    for hit in engine.rollup(&q, 3) {
        let via = hit.matches[0].via;
        let target = if via == crime { crime } else { via };
        let e = engine.explain(target, hit.doc, 5).expect("explainable");
        assert!(!e.matched_entities.is_empty());
    }
}

#[test]
fn dead_end_query_relaxation_journey() {
    // The Fig. 1 scenario end-to-end on generated data: a query that
    // matches nothing gets productive relaxation proposals, and a
    // coverage-less entity gets covered peers.
    let (kg, _corpus, engine) = engine_fixture(150, 15);
    // Construct an unlikely conjunction until we find a dead end.
    let labor = kg.concept_by_name("Labor Dispute").unwrap();
    let elections = kg.concept_by_name("Elections").unwrap();
    let crime = kg.concept_by_name("Financial Crime").unwrap();
    let q = ncexplorer::core::ConceptQuery::new([labor, elections, crime]);
    let hits = engine.rollup(&q, 10);
    if hits.is_empty() {
        let options = engine.relax(&q);
        assert!(
            !options.is_empty(),
            "a dead-end query must get relaxation proposals"
        );
        assert!(options[0].matches > 0);
        // Every proposal must genuinely match what it claims.
        for opt in options.iter().take(3) {
            assert_eq!(engine.rollup(&opt.query, 10_000).len(), opt.matches);
        }
    }
    // Peer pivot: FTX's peers are other Bitcoin Exchange members with
    // coverage.
    let ftx = kg.instance_by_name("FTX").unwrap();
    let peers = engine.peers(ftx, 5);
    for &(peer, df) in &peers {
        assert_ne!(peer, ftx);
        assert!(df > 0);
    }
}

#[test]
fn annotated_export_covers_corpus() {
    let (kg, _corpus, engine) = engine_fixture(80, 10);
    let mut buf = Vec::new();
    ncexplorer::core::export::export_annotated_corpus(
        &kg,
        engine.store(),
        engine.index(),
        &mut buf,
    )
    .unwrap();
    let text = String::from_utf8(buf).unwrap();
    let records = ncexplorer::core::export::parse_export(&text).unwrap();
    assert_eq!(records.len(), engine.store().len());
    // Concept annotations in the export match the index postings count.
    let total: usize = records.iter().map(|r| r.concepts.len()).sum();
    assert_eq!(total, engine.index().num_postings());
}
