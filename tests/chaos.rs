//! Serve-layer chaos harness: injected panics, storage faults, and
//! slow replicas against the fault-isolation contract.
//!
//! What must hold, fault or no fault:
//!
//! * a faulted query returns a typed [`QueryError`] — panics never
//!   escape the serve layer, sessions never wedge, locks never poison;
//! * a faulted replica is quarantined, recovered in the background from
//!   the last durable snapshot plus the ingest log, and rejoins only
//!   after a bit-for-bit self-check against a healthy peer;
//! * quarantine and recovery are observable in
//!   [`NcxServe::metrics_text`];
//! * post-recovery answers are bit-for-bit identical to an unfaulted
//!   reference.
//!
//! Fault plans are process-global state (`ncx_core::fault`), so every
//! test here serialises on one mutex; the CI `serve-chaos` job also
//! runs this binary with `--test-threads=1`.

use ncexplorer::core::fault::{self, FaultMode};
use ncexplorer::core::rollup::RollupHit;
use ncexplorer::core::{error::QueryError, ConceptQuery, NcExplorer, NcxConfig, Parallelism};
use ncexplorer::datagen::{generate_corpus, generate_kg, CorpusConfig, KgGenConfig};
use ncexplorer::serve::{NcxServe, ReplicaHealth, RetryPolicy, ServeConfig};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Fault plans are process-global; chaos tests must not overlap.
static CHAOS: Mutex<()> = Mutex::new(());

fn chaos_guard() -> std::sync::MutexGuard<'static, ()> {
    let guard = CHAOS.lock().unwrap_or_else(PoisonError::into_inner);
    fault::disarm_all();
    guard
}

const TOPICS: [&str; 3] = ["Financial Crime", "Elections", "Mergers & Acquisitions"];

/// Sequential engines (`Fixed(1)`): every fault site runs on the query's
/// calling thread, so `arm_local` plans fire exactly for the arming
/// test's own queries.
fn engine_config(width: usize) -> NcxConfig {
    NcxConfig {
        samples: 10,
        parallelism: Parallelism::Fixed(width),
        ..NcxConfig::default()
    }
}

fn build_engine(articles: usize, width: usize) -> NcExplorer {
    let kg = std::sync::Arc::new(generate_kg(&KgGenConfig::default()));
    let corpus = generate_corpus(
        &kg,
        &CorpusConfig {
            articles,
            ..CorpusConfig::default()
        },
    );
    NcExplorer::build(kg, corpus.store, engine_config(width))
}

fn reference(engine: &NcExplorer, k: usize) -> Vec<(ConceptQuery, Vec<RollupHit>)> {
    TOPICS
        .iter()
        .map(|t| {
            let q = engine.query(&[t]).unwrap();
            let hits = engine.rollup(&q, k);
            (q, hits)
        })
        .collect()
}

/// Polls `pred` until it holds or `timeout` elapses; returns whether it
/// held. Background recovery has no completion handle by design, so
/// tests observe it through the health/metrics APIs like operators do.
fn wait_for(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < timeout {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    pred()
}

/// The value of a counter/gauge sample line in a Prometheus exposition.
fn metric_value(text: &str, name: &str) -> f64 {
    text.lines()
        .find_map(|l| {
            let (n, v) = l.split_once(' ')?;
            if n == name {
                v.trim().parse::<f64>().ok()
            } else {
                None
            }
        })
        .unwrap_or_else(|| panic!("metric {name} not found in exposition"))
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ncx_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Panics at each labelled query-phase site surface as typed retryable
/// `Internal` errors; the session keeps working, the admission slots
/// are all released, and (with no recovery source configured) the lone
/// replica serves on, degraded, with identical answers.
#[test]
fn panics_are_isolated_to_typed_errors_and_nothing_wedges() {
    let _guard = chaos_guard();
    let engine = build_engine(100, 1);
    let want = reference(&engine, 10);
    let serve = NcxServe::new(
        engine,
        ServeConfig {
            max_in_flight: 2,
            cache_capacity: 0,
            ..ServeConfig::default()
        },
    );
    let session = serve.session();

    // The classic-path sites (query-time walks belong to the
    // progressive path, exercised separately below).
    let sites = [
        fault::SITE_MATCHING,
        fault::SITE_MERGE,
        fault::SITE_SERVE_EXECUTE,
    ];
    for (round, site) in sites.iter().enumerate() {
        let (q, hits) = &want[round % want.len()];
        fault::arm_local(site, FaultMode::Panic, 0);
        let err = session.rollup(q, 10).unwrap_err();
        assert!(
            matches!(err, QueryError::Internal { .. }) && err.is_retryable(),
            "site {site}: {err}"
        );
        assert!(err.to_string().contains("panicked"), "{err}");
        // The failed trace carries the panic payload.
        let trace = session.last_trace().unwrap();
        assert!(
            trace.error().is_some_and(|e| e.contains("injected")),
            "trace missing failure record: {:?}",
            trace.error()
        );
        // The gate was one-shot: the immediate retry answers exactly.
        assert_eq!(*session.rollup(q, 10).unwrap(), *hits, "site {site}");
    }

    // No recovery dir: the quarantine is terminal, the degraded
    // fallback still serves, and the books balance.
    assert_eq!(serve.healthy_replicas(), 0);
    assert_eq!(serve.replica_health(0), ReplicaHealth::Quarantined);
    let stats = serve.stats();
    assert_eq!(stats.query_panics, 3, "{stats:?}");
    assert_eq!(stats.internal_errors, 3, "{stats:?}");
    assert_eq!(stats.quarantines, 1, "one CAS wins; the rest see it");
    assert_eq!(stats.rejoins + stats.recovery_failures, 0, "{stats:?}");
    let text = serve.metrics_text();
    assert_eq!(metric_value(&text, "ncx_serve_query_panics_total"), 3.0);
    assert_eq!(metric_value(&text, "ncx_serve_healthy_replicas"), 0.0);
    fault::disarm_all();
}

/// A lazy shard that fails to decode surfaces as a typed retryable
/// error (never a panic), quarantines the replica whose snapshot view
/// is bad, and background recovery restores a bit-for-bit identical
/// replica from the same directory.
#[test]
fn lazy_decode_fault_quarantines_then_recovery_rejoins_bitforbit() {
    let _guard = chaos_guard();
    let engine = build_engine(100, 1);
    let kg = engine.kg_handle();
    let want = reference(&engine, 10);
    let dir = tmp_dir("lazy");
    engine.save(&dir).unwrap();
    drop(engine);

    let replicas = vec![
        NcExplorer::open_lazy(&dir, kg.clone(), engine_config(1)).unwrap(),
        NcExplorer::open_lazy(&dir, kg, engine_config(1)).unwrap(),
    ];
    let serve = NcxServe::with_replicas(
        replicas,
        ServeConfig {
            cache_capacity: 0,
            ..ServeConfig::default()
        },
    )
    .with_recovery_dir(&dir);

    let (q, hits) = &want[0];
    fault::arm_local(fault::SITE_LAZY_DECODE, FaultMode::StoreFault, 0);
    let err = serve.rollup(q, 10).unwrap_err();
    assert!(matches!(err, QueryError::Internal { .. }), "{err}");
    assert!(err.is_retryable(), "replica-local fault must be retryable");
    assert!(err.to_string().contains("injected fault"), "{err}");

    assert!(
        wait_for(Duration::from_secs(30), || serve.healthy_replicas() == 2),
        "recovery did not rejoin: {:?}",
        serve.stats()
    );
    let stats = serve.stats();
    assert_eq!(stats.quarantines, 1, "{stats:?}");
    assert_eq!(stats.rejoins, 1, "{stats:?}");
    assert_eq!(stats.recovery_failures, 0, "{stats:?}");
    // Cache off + round-robin: two queries hit both replicas, including
    // the recovered one. Answers must match the pre-fault reference.
    for _ in 0..2 {
        assert_eq!(*serve.rollup(q, 10).unwrap(), *hits);
    }
    std::fs::remove_dir_all(&dir).ok();
    fault::disarm_all();
}

/// Ingest keeps flowing while a replica is quarantined (healthy slots
/// take the write, the log remembers it) and the rejoining replica
/// replays what it missed — both replicas then agree on the enlarged
/// corpus.
#[test]
fn ingest_during_quarantine_is_replayed_on_rejoin() {
    let _guard = chaos_guard();
    let engine = build_engine(60, 1);
    let kg = engine.kg_handle();
    let dir = tmp_dir("rejoin");
    engine.save(&dir).unwrap();
    drop(engine);

    let serve = NcxServe::open_replicas(
        &dir,
        kg,
        engine_config(1),
        2,
        ServeConfig {
            cache_capacity: 0,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let q = serve.query(&["Financial Crime"]).unwrap();
    let before_hits = serve.rollup(&q, 500).unwrap();
    let before = before_hits.len();
    assert!(before > 0 && before < 500);
    // A duplicate of a known matching article must match the query too.
    let (title, body) = serve.with_engine(|e| {
        let a = e.document(before_hits[0].doc);
        (a.title.clone(), a.body.clone())
    });
    serve.ingest_article(
        ncexplorer::index::NewsSource::Reuters,
        &title,
        &body,
        7_000_000,
    );

    // Fault one replica, then ingest *while it is out of rotation*.
    fault::arm_local(fault::SITE_MATCHING, FaultMode::StoreFault, 0);
    let err = serve.rollup(&q, 500).unwrap_err();
    assert!(matches!(err, QueryError::Internal { .. }), "{err}");
    serve.ingest_article(
        ncexplorer::index::NewsSource::Reuters,
        &title,
        &body,
        7_000_001,
    );

    assert!(
        wait_for(Duration::from_secs(30), || serve.healthy_replicas() == 2),
        "recovery did not rejoin: {:?}",
        serve.stats()
    );
    // Both replicas (round-robin, cache off) see both ingests.
    for _ in 0..2 {
        assert_eq!(
            serve.rollup(&q, 500).unwrap().len(),
            before + 2,
            "a replica missed a logged ingest"
        );
    }
    let text = serve.metrics_text();
    assert!(metric_value(&text, "ncx_serve_quarantines_total") >= 1.0);
    assert!(metric_value(&text, "ncx_serve_rejoins_total") >= 1.0);
    std::fs::remove_dir_all(&dir).ok();
    fault::disarm_all();
}

/// A pathologically slow replica is a *deadline* problem, not a fault:
/// the query gets the typed deadline rejection, and the replica — which
/// is slow, not wrong — is NOT quarantined.
#[test]
fn slow_replica_trips_deadline_not_quarantine() {
    let _guard = chaos_guard();
    let engine = build_engine(80, 1);
    let want = reference(&engine, 10);
    let serve = NcxServe::new(
        engine,
        ServeConfig {
            cache_capacity: 0,
            ..ServeConfig::default()
        },
    );
    let (q, hits) = &want[0];

    fault::arm_local(
        fault::SITE_SERVE_EXECUTE,
        FaultMode::Delay(Duration::from_millis(80)),
        0,
    );
    let err = serve
        .rollup_deadline(q, 10, Some(Duration::from_millis(5)))
        .unwrap_err();
    assert!(
        matches!(err, QueryError::DeadlineExceeded { .. }),
        "slowness must surface as a deadline rejection: {err}"
    );
    assert!(!err.is_retryable(), "the time budget is spent");

    let stats = serve.stats();
    assert_eq!(stats.internal_errors, 0, "{stats:?}");
    assert_eq!(stats.quarantines, 0, "slow is not faulted: {stats:?}");
    assert_eq!(serve.healthy_replicas(), 1);
    // Un-delayed, the same query answers exactly.
    assert_eq!(*serve.rollup(q, 10).unwrap(), *hits);
    fault::disarm_all();
}

/// The progressive (anytime) paths are panic-isolated too: their engine
/// entry points are infallible, so the serve-execute wrapper is where a
/// panic surfaces — as the same typed retryable `Internal`.
#[test]
fn progressive_paths_are_panic_isolated() {
    let _guard = chaos_guard();
    let engine = build_engine(80, 1);
    let q = engine.query(&["Elections"]).unwrap();
    let serve = NcxServe::new(
        engine,
        ServeConfig {
            cache_capacity: 0,
            ..ServeConfig::default()
        },
    );

    fault::arm_local(fault::SITE_SERVE_EXECUTE, FaultMode::Panic, 0);
    let err = serve.rollup_progressive(&q, 10).unwrap_err();
    assert!(matches!(err, QueryError::Internal { .. }), "{err}");
    assert!(err.is_retryable());
    assert_eq!(serve.stats().query_panics, 1);

    // The retry completes — and with no deadline pressure the anytime
    // path converges to a complete, non-partial result.
    let result = serve.rollup_progressive(&q, 10).unwrap();
    assert!(result.is_complete(), "unfaulted retry should converge");

    // The walks site fires inside the progressive path proper (the
    // resumable-unit open); `StoreFault` escalates to a panic at this
    // infallible site, and the wrapper still types it.
    fault::arm_local(fault::SITE_WALKS, FaultMode::StoreFault, 0);
    let err = serve.rollup_progressive(&q, 10).unwrap_err();
    assert!(matches!(err, QueryError::Internal { .. }), "{err}");
    assert_eq!(serve.stats().query_panics, 2);
    fault::disarm_all();
}

/// The full sweep: a concurrent closed-loop workload with client-side
/// retries while a chaos thread keeps arming one-shot faults across
/// every site. Afterwards: the books balance (no query lost, no wedged
/// session), quarantine + recovery are visible in the metrics, every
/// replica is healthy again, and answers are bit-for-bit identical to
/// the unfaulted reference.
#[test]
fn chaos_sweep_under_concurrent_load_recovers_bitforbit() {
    let _guard = chaos_guard();
    let engine = build_engine(120, 2);
    let kg = engine.kg_handle();
    let want = reference(&engine, 10);
    let queries: Vec<ConceptQuery> = want.iter().map(|(q, _)| q.clone()).collect();
    let dir = tmp_dir("sweep");
    engine.save(&dir).unwrap();
    drop(engine);

    let serve = NcxServe::open_replicas(
        &dir,
        kg,
        engine_config(2),
        2,
        ServeConfig {
            max_in_flight: 4,
            queue_depth: 64,
            cache_capacity: 0,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let spec = ncx_bench::loadgen::LoadSpec {
        sessions: 4,
        queries_per_session: if cfg!(debug_assertions) { 30 } else { 80 },
        queries: &queries,
        k: 10,
        deadline: Some(Duration::from_secs(60)),
        drilldown_every: 4,
        retry: Some(RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
            jitter: 0.3,
            seed: 0xc4a05,
        }),
    };

    // Chaos alongside the load: one-shot faults cycling through every
    // site, a few milliseconds apart. One-shot (not sticky) so a plan
    // is consumed by exactly one query and a retry can succeed, and so
    // the recovery thread's self-check can't starve forever.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let report = std::thread::scope(|scope| {
        let chaos = scope.spawn(|| {
            let plans = [
                (fault::SITE_MATCHING, FaultMode::StoreFault),
                (fault::SITE_MATCHING, FaultMode::Panic),
                (fault::SITE_MERGE, FaultMode::Panic),
                (fault::SITE_SERVE_EXECUTE, FaultMode::StoreFault),
                (
                    fault::SITE_SERVE_EXECUTE,
                    FaultMode::Delay(Duration::from_millis(3)),
                ),
            ];
            let mut i = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let (site, mode) = plans[i % plans.len()];
                fault::arm(site, mode, 0);
                i += 1;
                std::thread::sleep(Duration::from_millis(3));
            }
        });
        let report = ncx_bench::loadgen::closed_loop(&serve, &spec);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        chaos.join().expect("chaos thread panicked");
        report
    });
    fault::disarm_all();

    // Books balance: every query was answered or typed-rejected — no
    // session wedged, no permit leaked (a follow-up query admits fine).
    let total = (spec.sessions * spec.queries_per_session) as u64;
    assert_eq!(report.completed + report.rejected, total, "{report:?}");
    assert!(report.completed > 0, "{report:?}");
    let stats = serve.stats();
    assert!(
        stats.quarantines >= 1,
        "the sweep should have faulted at least one replica: {stats:?}"
    );

    // Drive recovery to convergence. A recovery attempt that itself ate
    // a chaos fault fails and parks the replica in Quarantined;
    // recover_quarantined re-triggers it — the operator's timer, here in
    // loop form.
    assert!(
        wait_for(Duration::from_secs(60), || {
            serve.recover_quarantined();
            serve.healthy_replicas() == serve.replica_count()
        }),
        "replicas never converged back to healthy: {:?}",
        serve.stats()
    );

    // Post-recovery: both replicas answer every query bit-for-bit like
    // the unfaulted reference engine.
    for (q, hits) in &want {
        for _ in 0..2 {
            assert_eq!(
                *serve.rollup(q, 10).unwrap(),
                *hits,
                "post-recovery divergence"
            );
        }
    }

    // And the whole story is on the metrics endpoint.
    let text = serve.metrics_text();
    assert!(metric_value(&text, "ncx_serve_quarantines_total") >= 1.0);
    assert!(metric_value(&text, "ncx_serve_rejoins_total") >= 1.0);
    assert_eq!(
        metric_value(&text, "ncx_serve_healthy_replicas"),
        serve.replica_count() as f64
    );
    assert_eq!(
        metric_value(&text, "ncx_serve_completed_total"),
        serve.stats().completed as f64
    );
    std::fs::remove_dir_all(&dir).ok();
    fault::disarm_all();
}

/// Repeated panics beyond the admission capacity must not shrink it:
/// permits are RAII and survive unwinding, so after N > max_in_flight
/// panics the server still admits max_in_flight concurrent queries.
#[test]
fn admission_capacity_survives_repeated_panics() {
    let _guard = chaos_guard();
    let engine = build_engine(60, 1);
    let q = engine.query(&["Elections"]).unwrap();
    let serve = NcxServe::new(
        engine,
        ServeConfig {
            max_in_flight: 2,
            queue_depth: 0,
            cache_capacity: 0,
            ..ServeConfig::default()
        },
    );
    // 2 + queue 0: more panics than there are permits.
    for _ in 0..5 {
        fault::arm_local(fault::SITE_MATCHING, FaultMode::Panic, 0);
        let err = serve.rollup(&q, 10).unwrap_err();
        assert!(matches!(err, QueryError::Internal { .. }), "{err}");
    }
    // Two queries can still run concurrently (each would be rejected
    // Overloaded if a permit had leaked while a peer holds the other).
    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| {
                for _ in 0..10 {
                    match serve.rollup(&q, 10) {
                        Ok(_) => {}
                        // Transient: the peer thread holds the other
                        // permit mid-query. Leaks would make this
                        // permanent, which the final check catches.
                        Err(QueryError::Overloaded { .. }) => {}
                        Err(e) => panic!("unexpected rejection: {e}"),
                    }
                }
            });
        }
    });
    // Sequentially, with no competition, both permits must be free.
    serve.rollup(&q, 10).unwrap();
    assert_eq!(serve.stats().query_panics, 5);
    fault::disarm_all();
}
