//! Scale and config-cap behaviour across the whole pipeline.

use ncexplorer::core::{NcExplorer, NcxConfig};
use ncexplorer::datagen::{generate_corpus, generate_kg, CorpusConfig, KgGenConfig};
use std::sync::Arc;

#[test]
fn drilldown_doc_cap_limits_work_not_correctness() {
    let kg = Arc::new(generate_kg(&KgGenConfig::default()));
    let corpus = generate_corpus(
        &kg,
        &CorpusConfig {
            articles: 150,
            ..CorpusConfig::default()
        },
    );
    let capped = NcExplorer::build(
        kg.clone(),
        &corpus.store,
        NcxConfig {
            samples: 10,
            drilldown_doc_cap: 5,
            ..NcxConfig::default()
        },
    );
    let q = capped.query(&["Financial Crime"]).unwrap();
    let subs = capped.drilldown(&q, 10);
    // With only 5 docs examined, no subtopic can claim more than 5.
    for s in &subs {
        assert!(s.matching_docs <= 5, "{s:?}");
    }
    assert!(!subs.is_empty());
}

#[test]
fn concept_cap_bounds_postings_per_doc() {
    let kg = Arc::new(generate_kg(&KgGenConfig::default()));
    let corpus = generate_corpus(
        &kg,
        &CorpusConfig {
            articles: 60,
            ..CorpusConfig::default()
        },
    );
    let engine = NcExplorer::build(
        kg.clone(),
        &corpus.store,
        NcxConfig {
            samples: 10,
            max_concepts_per_doc: 3,
            ..NcxConfig::default()
        },
    );
    for i in 0..engine.index().num_docs() {
        let n = engine
            .index()
            .concepts_of_doc(ncexplorer::kg::DocId::from_index(i))
            .len();
        assert!(n <= 3, "doc {i} has {n} concepts");
    }
}

/// Medium-scale end-to-end smoke test (a few thousand articles, bigger
/// KG). Run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "slow: medium-scale build"]
fn medium_scale_pipeline() {
    let kg = Arc::new(generate_kg(&KgGenConfig {
        synth_per_group: 200,
        orphan_entities: 500,
        ..KgGenConfig::default()
    }));
    let corpus = generate_corpus(
        &kg,
        &CorpusConfig {
            articles: 3000,
            ..CorpusConfig::default()
        },
    );
    let t0 = std::time::Instant::now();
    let engine = NcExplorer::build(
        kg.clone(),
        &corpus.store,
        NcxConfig {
            samples: 25,
            ..NcxConfig::default()
        },
    );
    eprintln!(
        "built {} docs / {} postings in {:?}",
        engine.index().num_docs(),
        engine.index().num_postings(),
        t0.elapsed()
    );
    assert_eq!(engine.index().num_docs(), 3000);
    for topic in ["Financial Crime", "Elections", "Mergers & Acquisitions"] {
        let q = engine.query(&[topic]).unwrap();
        let hits = engine.rollup(&q, 10);
        assert_eq!(hits.len(), 10, "{topic} must fill top-10 at this scale");
        let subs = engine.drilldown(&q, 10);
        assert!(subs.len() >= 5, "{topic} drill-down too thin");
    }
}
