//! Scale and config-cap behaviour across the whole pipeline, plus the
//! perf-regression harness that tracks `BENCH_scale.json`.

use ncexplorer::core::{ConceptQuery, NcExplorer, NcxConfig, Parallelism};
use ncexplorer::datagen::{generate_corpus, generate_kg, CorpusConfig, KgGenConfig};
use ncexplorer::obs::Histogram;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn drilldown_doc_cap_limits_work_not_correctness() {
    let kg = Arc::new(generate_kg(&KgGenConfig::default()));
    let corpus = generate_corpus(
        &kg,
        &CorpusConfig {
            articles: 150,
            ..CorpusConfig::default()
        },
    );
    let capped = NcExplorer::build(
        kg.clone(),
        corpus.store,
        NcxConfig {
            samples: 10,
            drilldown_doc_cap: 5,
            ..NcxConfig::default()
        },
    );
    let q = capped.query(&["Financial Crime"]).unwrap();
    let subs = capped.drilldown(&q, 10);
    // With only 5 docs examined, no subtopic can claim more than 5.
    for s in &subs {
        assert!(s.matching_docs <= 5, "{s:?}");
    }
    assert!(!subs.is_empty());
}

#[test]
fn concept_cap_bounds_postings_per_doc() {
    let kg = Arc::new(generate_kg(&KgGenConfig::default()));
    let corpus = generate_corpus(
        &kg,
        &CorpusConfig {
            articles: 60,
            ..CorpusConfig::default()
        },
    );
    let engine = NcExplorer::build(
        kg.clone(),
        corpus.store,
        NcxConfig {
            samples: 10,
            max_concepts_per_doc: 3,
            ..NcxConfig::default()
        },
    );
    for i in 0..engine.index().num_docs() {
        let n = engine
            .index()
            .concepts_of_doc(ncexplorer::kg::DocId::from_index(i))
            .len();
        assert!(n <= 3, "doc {i} has {n} concepts");
    }
}

/// Pulls `"key": <number>` out of the baseline JSON (the file is written
/// by this harness, so the trivial grammar is enough).
fn json_f64(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let end = rest.find([',', '}', '\n'])?;
    rest[..end].trim().parse().ok()
}

/// Medium-scale end-to-end perf harness. Builds the medium corpus,
/// asserts sequential/parallel result equivalence, and records the
/// baseline metrics tracked in `BENCH_scale.json`.
///
/// Always writes the freshly measured numbers to
/// `target/BENCH_scale.json`; run with `NCX_UPDATE_BASELINE=1` (ideally
/// `cargo test --release medium_scale_pipeline`) to refresh the
/// committed baseline at the repo root. When a committed baseline with a
/// matching build profile exists, regressions are reported (and fail the
/// test only under `NCX_STRICT_BASELINE=1` — wall-clock asserts are too
/// machine-dependent for unconditional CI failure).
#[test]
fn medium_scale_pipeline() {
    let articles: usize = std::env::var("NCX_SCALE_ARTICLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3000);
    let kg = Arc::new(generate_kg(&KgGenConfig {
        synth_per_group: 200,
        orphan_entities: 500,
        ..KgGenConfig::default()
    }));
    let corpus = generate_corpus(
        &kg,
        &CorpusConfig {
            articles,
            ..CorpusConfig::default()
        },
    );
    // Kept aside for the walks/sec floor's re-measurement builds (the
    // engine takes the store by value).
    let corpus_store_for_retries = corpus.store.clone();
    let t0 = Instant::now();
    // An explicit pool width keeps the harness machine-independent: the
    // parallel paths are exercised even on single-core runners (where
    // `Auto` would build a width-1 pool and pin everything sequential).
    let mut engine = NcExplorer::build(
        kg.clone(),
        corpus.store,
        NcxConfig {
            samples: 25,
            parallelism: Parallelism::Fixed(4),
            ..NcxConfig::default()
        },
    );
    let build_seconds = t0.elapsed().as_secs_f64();
    assert_eq!(engine.index().num_docs(), articles);

    let topics = ["Financial Crime", "Elections", "Mergers & Acquisitions"];
    for topic in topics {
        let q = engine.query(&[topic]).unwrap();
        let hits = engine.rollup(&q, 10);
        assert_eq!(hits.len(), 10, "{topic} must fill top-10 at this scale");
        let subs = engine.drilldown(&q, 10);
        assert!(subs.len() >= 5, "{topic} drill-down too thin");
    }

    // ---- sequential ↔ parallel result equivalence ----
    // Single topics exercise the drill-down sweeps; the conjunction
    // fans roll-up out over multiple posting lists.
    let equivalence_queries: [&[&str]; 4] = [
        &["Financial Crime"],
        &["Elections"],
        &["Mergers & Acquisitions"],
        &["Financial Crime", "Bank"],
    ];
    for topic in equivalence_queries {
        let q = engine.query(topic).unwrap();
        engine.set_parallelism(Parallelism::sequential()).unwrap();
        let seq_hits = engine.rollup(&q, 50);
        let seq_subs = engine.drilldown(&q, 20);
        engine.set_parallelism(Parallelism::Fixed(4)).unwrap();
        let par_hits = engine.rollup(&q, 50);
        let par_subs = engine.drilldown(&q, 20);
        assert_eq!(seq_hits, par_hits, "{topic:?}: parallel roll-up diverged");
        assert_eq!(seq_subs.len(), par_subs.len());
        for (a, b) in seq_subs.iter().zip(&par_subs) {
            assert_eq!(a.concept, b.concept, "{topic:?}: drill-down rank diverged");
            assert_eq!(a.matching_docs, b.matching_docs);
            assert_eq!(a.distinct_entities, b.distinct_entities);
            assert!(
                (a.score - b.score).abs() <= 1e-9 * a.score.abs().max(1.0),
                "{topic:?}: drill-down score drift {} vs {}",
                a.score,
                b.score
            );
        }
    }

    // ---- baseline metrics ----
    // `Auto` sizes execution to the machine (capped by the pool width),
    // which is what a production deployment runs; pinning `Fixed(4)`
    // here would charge single-core runners for four workers contending
    // over one CPU and make the baseline meaningless across machines.
    engine.set_parallelism(Parallelism::Auto).unwrap();
    // Latencies go into ncx-obs log-linear histograms (µs resolution,
    // ≤ 1/32 relative bucket width) — the same machinery the serving
    // layer exports — instead of sorted sample vectors.
    let reps = 15;
    let rollup_lat = Histogram::new();
    let drill_lat = Histogram::new();
    for topic in topics {
        let q = engine.query(&[topic]).unwrap();
        for _ in 0..reps {
            let t = Instant::now();
            let hits = engine.rollup(&q, 10);
            rollup_lat.record_duration_us(t.elapsed());
            assert_eq!(hits.len(), 10);
            let t = Instant::now();
            let subs = engine.drilldown(&q, 10);
            drill_lat.record_duration_us(t.elapsed());
            assert!(!subs.is_empty());
        }
    }
    let rollup_p50_us = rollup_lat.quantile(0.5) as f64;
    let drilldown_p50_us = drill_lat.quantile(0.5) as f64;

    // ---- small-query latency group (seq vs par) ----
    // With the PAR_MIN_* work floors lowered for the persistent pool,
    // parallel mode must not regress interactive small queries — the
    // regime the floors protect. At 3000 articles the synthetic corpus
    // has no small result sets (every indexed concept matches hundreds
    // of documents), so the group measures a small corpus over the same
    // KG. Below the floors the parallel config runs the identical
    // sequential code path, so the medians should coincide up to
    // measurement noise.
    let small_corpus = generate_corpus(
        &kg,
        &CorpusConfig {
            articles: 250,
            ..CorpusConfig::default()
        },
    );
    let mut small_engine = NcExplorer::build(
        kg.clone(),
        small_corpus.store,
        NcxConfig {
            samples: 25,
            parallelism: Parallelism::Fixed(4),
            ..NcxConfig::default()
        },
    );
    // The smallest query the corpus can express, in the quantity the
    // floors gate (total via-list posting volume).
    let via_volume = |c| {
        ncexplorer::core::rollup::via_posting_volume(
            small_engine.index(),
            small_engine.kg(),
            c,
            small_engine.config(),
        )
    };
    let small_concept = small_engine
        .index()
        .indexed_concepts()
        .filter(|&c| small_engine.index().postings(c).len() >= 2)
        .min_by_key(|&c| via_volume(c))
        .expect("corpus indexes at least one small concept");
    let small_q = ConceptQuery::new([small_concept]);
    let small_reps = 60;
    let mut small = |mode: Parallelism| {
        small_engine.set_parallelism(mode).unwrap();
        let roll = Histogram::new();
        let drill = Histogram::new();
        for _ in 0..small_reps {
            let t = Instant::now();
            let hits = small_engine.rollup(&small_q, 10);
            roll.record_duration_us(t.elapsed());
            assert!(!hits.is_empty());
            let t = Instant::now();
            small_engine.drilldown(&small_q, 10);
            drill.record_duration_us(t.elapsed());
        }
        (roll.quantile(0.5) as f64, drill.quantile(0.5) as f64)
    };
    let (small_rollup_seq_us, small_drill_seq_us) = small(Parallelism::sequential());
    let (small_rollup_par_us, small_drill_par_us) = small(Parallelism::Fixed(4));
    // Soft acceptance: parallel small queries must be no worse than
    // sequential. Sub-µs medians jitter, so allow generous noise slack;
    // a real regression (pool dispatch on the hot path) is 10×+.
    for (label, seq_us, par_us) in [
        ("rollup", small_rollup_seq_us, small_rollup_par_us),
        ("drilldown", small_drill_seq_us, small_drill_par_us),
    ] {
        let ok = par_us <= 3.0 * seq_us + 50.0;
        if !ok {
            eprintln!("small-query {label} regressed: par {par_us:.1}µs vs seq {seq_us:.1}µs");
        }
        assert!(
            ok || std::env::var("NCX_STRICT_BASELINE").is_err(),
            "small-query {label}: par {par_us:.1}µs vs seq {seq_us:.1}µs"
        );
    }

    // ---- cold_open group: snapshot save + cold-open vs rebuild ----
    // Persist the built engine, cold-open it, and require (a) bit-for-bit
    // identical answers to the harness query set and (b) an open at
    // least 5× faster than the two-pass rebuild — the acceptance bar for
    // the snapshot subsystem (in practice it is orders of magnitude).
    let root = env!("CARGO_MANIFEST_DIR");
    let snap_dir = std::path::PathBuf::from(root).join("target/scale_snapshot");
    let _ = std::fs::remove_dir_all(&snap_dir);
    let t = Instant::now();
    engine.save(&snap_dir).expect("snapshot save");
    let save_seconds = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let mut cold = NcExplorer::open(
        &snap_dir,
        kg.clone(),
        NcxConfig {
            samples: 25,
            parallelism: Parallelism::Fixed(4),
            ..NcxConfig::default()
        },
    )
    .expect("snapshot open");
    let cold_open_seconds = t.elapsed().as_secs_f64();
    assert_eq!(cold.index().num_docs(), articles);
    assert_eq!(cold.index().num_postings(), engine.index().num_postings());
    for modes in [Parallelism::sequential(), Parallelism::Fixed(4)] {
        engine.set_parallelism(modes).unwrap();
        cold.set_parallelism(modes).unwrap();
        for topic in equivalence_queries {
            let qw = engine.query(topic).unwrap();
            let qc = cold.query(topic).unwrap();
            assert_eq!(
                engine.rollup(&qw, 50),
                cold.rollup(&qc, 50),
                "{topic:?}: cold-open roll-up diverged"
            );
            assert_eq!(
                engine.drilldown(&qw, 20),
                cold.drilldown(&qc, 20),
                "{topic:?}: cold-open drill-down diverged"
            );
        }
    }
    drop(cold);
    engine.set_parallelism(Parallelism::Auto).unwrap();
    let cold_open_speedup = build_seconds / cold_open_seconds.max(1e-9);
    eprintln!(
        "cold_open: save {save_seconds:.3}s, open {cold_open_seconds:.3}s, \
         rebuild {build_seconds:.3}s ({cold_open_speedup:.0}× faster than rebuild)"
    );
    assert!(
        cold_open_seconds * 5.0 <= build_seconds,
        "cold open ({cold_open_seconds:.3}s) must be at least 5× faster than \
         the rebuild ({build_seconds:.3}s)"
    );

    let d = engine.diagnostics();
    let scoring_secs = d.timing.relevance_scoring.as_secs_f64();
    let mut walks_per_sec = if scoring_secs > 0.0 {
        d.walk_stats.walks as f64 / scoring_secs
    } else {
        0.0
    };

    // ---- walk-engine throughput floor (PR 5) ----
    // The bitset-guided walk engine must sustain at least 2× the
    // 443,156 walks/s committed with PR 4 on this harness. Wall-clock
    // rates are meaningless in debug builds, so the floor is
    // release-only; on shared machines a single build can be slowed by
    // unrelated load, so up to three fresh rebuilds absorb the noise
    // (the walks are seed-deterministic — only the clock varies) and
    // the best observed rate is the one recorded. NCX_SKIP_PERF_FLOORS=1
    // opts out entirely (e.g. on severely underpowered hardware).
    const WALKS_PER_SEC_FLOOR: f64 = 886_312.0;
    // ---- obs-overhead floor (PR 9) ----
    // The trace/metrics instrumentation must stay off the walk hot
    // loop: the measured rate must also land within 5% of the committed
    // release baseline, which was recorded with instrumentation wired
    // in. The tighter of the two floors governs.
    let committed_walks_per_sec = std::fs::read_to_string(format!("{root}/BENCH_scale.json"))
        .ok()
        .filter(|b| {
            b.contains("\"profile\": \"release\"")
                && json_f64(b, "articles") == Some(articles as f64)
        })
        .and_then(|b| json_f64(&b, "walks_per_sec"))
        .unwrap_or(0.0);
    let walks_floor = WALKS_PER_SEC_FLOOR.max(0.95 * committed_walks_per_sec);
    if !cfg!(debug_assertions) && std::env::var("NCX_SKIP_PERF_FLOORS").is_err() {
        for attempt in 0..3 {
            if walks_per_sec >= walks_floor {
                break;
            }
            eprintln!(
                "walks/sec {walks_per_sec:.0} below floor {walks_floor:.0}, \
                 re-measuring (attempt {})",
                attempt + 1
            );
            let retry = NcExplorer::build(
                kg.clone(),
                corpus_store_for_retries.clone(),
                NcxConfig {
                    samples: 25,
                    parallelism: Parallelism::Fixed(4),
                    ..NcxConfig::default()
                },
            );
            let rd = retry.diagnostics();
            let secs = rd.timing.relevance_scoring.as_secs_f64();
            assert_eq!(
                rd.walk_stats.walks, d.walk_stats.walks,
                "walk counts are seed-deterministic across rebuilds"
            );
            if secs > 0.0 {
                walks_per_sec = walks_per_sec.max(rd.walk_stats.walks as f64 / secs);
            }
        }
        assert!(
            walks_per_sec >= walks_floor,
            "walk engine regressed: {walks_per_sec:.0} walks/s < floor {walks_floor:.0} \
             (max of 2x the PR-4 baseline 443,156 and 95% of the committed \
             {committed_walks_per_sec:.0})"
        );
    }
    // ---- ingest_to_queryable group: delta flush vs full save (PR 7) ----
    // The generation-layered store's reason to exist: after an ingest
    // backlog, `flush_delta` must reach a durable, queryable snapshot by
    // writing only the delta — not by rewriting the whole base. The
    // group ingests a 100-article backlog into a copy of the cold_open
    // snapshot and times the flush against the full save measured above.
    let layered_dir = std::path::PathBuf::from(root).join("target/scale_snapshot_layered");
    let _ = std::fs::remove_dir_all(&layered_dir);
    std::fs::create_dir_all(&layered_dir).expect("layered dir");
    for entry in std::fs::read_dir(&snap_dir).expect("snapshot dir") {
        let entry = entry.expect("snapshot entry");
        std::fs::copy(entry.path(), layered_dir.join(entry.file_name())).expect("copy snapshot");
    }
    let delta_articles = 100usize;
    let mut layered = NcExplorer::open(
        &layered_dir,
        kg.clone(),
        NcxConfig {
            samples: 25,
            parallelism: Parallelism::Fixed(4),
            ..NcxConfig::default()
        },
    )
    .expect("layered base open");
    let backlog = generate_corpus(
        &kg,
        &CorpusConfig {
            articles: delta_articles,
            seed: 777,
            ..CorpusConfig::default()
        },
    );
    for a in backlog.store.iter() {
        layered.ingest_article(a.source, a.title.clone(), a.body.clone(), a.published);
    }
    let t = Instant::now();
    let flush = layered.flush_delta(&layered_dir).expect("delta flush");
    let ingest_to_queryable_seconds = t.elapsed().as_secs_f64();
    assert_eq!(flush.flushed_docs, delta_articles as u64);
    assert_eq!(flush.generation, Some(1));
    let flush_speedup = save_seconds / ingest_to_queryable_seconds.max(1e-9);
    eprintln!(
        "ingest_to_queryable: {delta_articles}-article delta flush \
         {ingest_to_queryable_seconds:.4}s vs full save {save_seconds:.3}s \
         ({flush_speedup:.0}× faster)"
    );
    if !cfg!(debug_assertions) && std::env::var("NCX_SKIP_PERF_FLOORS").is_err() {
        assert!(
            ingest_to_queryable_seconds * 2.0 <= save_seconds,
            "a {delta_articles}-doc delta flush ({ingest_to_queryable_seconds:.4}s) must be \
             at least 2× faster than a full {articles}-doc save ({save_seconds:.3}s)"
        );
    }

    // ---- lazy_open group: manifest-stat open vs eager decode ----
    // A lazy open defers per-shard posting decode to first touch, so the
    // layered snapshot must become *openable* strictly faster than the
    // eager path while serving identical answers once shards fault in.
    // Best-of-3 per mode absorbs shared-runner noise.
    let lazy_cfg = NcxConfig {
        samples: 25,
        parallelism: Parallelism::Fixed(4),
        ..NcxConfig::default()
    };
    let mut eager_open_seconds = f64::INFINITY;
    let mut lazy_open_seconds = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let eager = NcExplorer::open(&layered_dir, kg.clone(), lazy_cfg.clone()).expect("eager");
        eager_open_seconds = eager_open_seconds.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let lazy = NcExplorer::open_lazy(&layered_dir, kg.clone(), lazy_cfg.clone()).expect("lazy");
        lazy_open_seconds = lazy_open_seconds.min(t.elapsed().as_secs_f64());
        assert_eq!(lazy.index().lazy_shards_materialized(), Some(0));
        assert_eq!(lazy.index().num_docs(), eager.index().num_docs());
        assert_eq!(lazy.index().num_postings(), eager.index().num_postings());
        let q = ["Financial Crime"];
        let ql = lazy.query(&q).unwrap();
        let qe = eager.query(&q).unwrap();
        assert_eq!(
            lazy.rollup(&ql, 50),
            eager.rollup(&qe, 50),
            "lazy open diverged from eager on first touch"
        );
        assert!(lazy.index().lazy_shards_materialized().unwrap() > 0);
    }
    eprintln!(
        "lazy_open: lazy {lazy_open_seconds:.4}s vs eager {eager_open_seconds:.4}s \
         over {delta_articles}-article delta stack"
    );
    if !cfg!(debug_assertions) && std::env::var("NCX_SKIP_PERF_FLOORS").is_err() {
        assert!(
            lazy_open_seconds <= eager_open_seconds * 1.5 + 0.005,
            "lazy open ({lazy_open_seconds:.4}s) must not be slower than eager \
             ({eager_open_seconds:.4}s): deferral is doing negative work"
        );
    }
    drop(layered);
    let _ = std::fs::remove_dir_all(&layered_dir);

    // ---- serve group: concurrent sessions + snapshot replicas (PR 6) ----
    // Drive the serving layer with a closed-loop session fleet, first
    // over a single engine, then over two replicas cold-opened from the
    // snapshot the cold_open group left behind. The load generator
    // records the p50/p99 serving latencies tracked in BENCH_scale.json;
    // correctness (concurrent == sequential, bit-for-bit) is enforced by
    // tests/serve.rs, so this group only asserts that no query is lost.
    let serve_queries: Vec<ConceptQuery> = equivalence_queries
        .iter()
        .map(|t| engine.query(t).unwrap())
        .collect();
    let serve_cfg = ncexplorer::serve::ServeConfig {
        max_in_flight: 4,
        queue_depth: 64,
        ..Default::default()
    };
    let replica_engine_cfg = NcxConfig {
        samples: 25,
        parallelism: Parallelism::Fixed(4),
        ..NcxConfig::default()
    };
    let spec = ncx_bench::loadgen::LoadSpec {
        sessions: 4,
        queries_per_session: if cfg!(debug_assertions) { 10 } else { 40 },
        queries: &serve_queries,
        k: 50,
        deadline: Some(Duration::from_secs(120)),
        drilldown_every: 4,
        retry: None,
    };
    let single = ncexplorer::serve::NcxServe::open_replicas(
        &snap_dir,
        kg.clone(),
        replica_engine_cfg.clone(),
        1,
        serve_cfg.clone(),
    )
    .expect("serve over one snapshot engine");
    let serve_report = ncx_bench::loadgen::closed_loop(&single, &spec);
    assert_eq!(
        serve_report.completed,
        (spec.sessions * spec.queries_per_session) as u64,
        "single-engine serve lost queries: {serve_report:?}"
    );
    drop(single);
    let replicas = ncexplorer::serve::NcxServe::open_replicas(
        &snap_dir,
        kg.clone(),
        replica_engine_cfg,
        2,
        serve_cfg,
    )
    .expect("serve over two snapshot replicas");
    assert_eq!(replicas.replica_count(), 2);
    let replica_spec = ncx_bench::loadgen::LoadSpec {
        sessions: 8,
        ..spec
    };
    let replica_report = ncx_bench::loadgen::closed_loop(&replicas, &replica_spec);
    assert_eq!(
        replica_report.completed,
        (replica_spec.sessions * replica_spec.queries_per_session) as u64,
        "replica serve lost queries: {replica_report:?}"
    );
    drop(replicas);
    let serve_p50_us = serve_report.p50.as_secs_f64() * 1e6;
    let serve_p99_us = serve_report.p99.as_secs_f64() * 1e6;
    let serve_qps = serve_report.qps;
    let replica_p50_us = replica_report.p50.as_secs_f64() * 1e6;
    let replica_p99_us = replica_report.p99.as_secs_f64() * 1e6;
    let replica_qps = replica_report.qps;
    eprintln!(
        "serve: {} sessions p50 {serve_p50_us:.1}µs p99 {serve_p99_us:.1}µs \
         ({serve_qps:.0} qps); 2 replicas x {} sessions p50 {replica_p50_us:.1}µs \
         p99 {replica_p99_us:.1}µs ({replica_qps:.0} qps)",
        serve_report.sessions, replica_report.sessions
    );

    // ---- progressive group: early-termination top-k walk savings ----
    // The anytime executor's hot-path win (ISSUE 8): racing stops
    // walking candidates that provably cannot reach the top-k, so
    // median walks/query must drop ≥ 30% against the exhaustive
    // (racing-off) executor *with the top-k unchanged*. Walk counts are
    // seed-deterministic — no wall clock involved — so the floor holds
    // in any profile; NCX_SKIP_PERF_FLOORS remains the escape hatch.
    // The racing-off engine is a cheap cold open of the same snapshot
    // with only the progressive knob flipped. Parallelism is pinned to
    // Fixed(1): that is the bit-for-bit contract's setting — the
    // classic parallel drill-down folds coverage batch-by-batch, a
    // different float-sum association than the sequential fold the
    // progressive executor reproduces. (Progressive results themselves
    // are pool-independent, so the racing engine stays at Fixed(4).)
    let mut prog_off_cfg = NcxConfig {
        samples: 25,
        parallelism: Parallelism::Fixed(1),
        ..NcxConfig::default()
    };
    prog_off_cfg.progressive.racing = false;
    let exhaustive_engine =
        NcExplorer::open(&snap_dir, kg.clone(), prog_off_cfg).expect("racing-off open");
    let mut racing_walks: Vec<u64> = Vec::new();
    let mut exhaustive_walks: Vec<u64> = Vec::new();
    let mut drill_racing_walks: Vec<u64> = Vec::new();
    let mut drill_exhaustive_walks: Vec<u64> = Vec::new();
    for topic in equivalence_queries {
        let q = engine.query(topic).unwrap();
        let qx = exhaustive_engine.query(topic).unwrap();

        // Exhaustive progressive == classic, bit-for-bit (the tentpole's
        // reference-semantics criterion, at scale).
        let exhaustive = exhaustive_engine.rollup_progressive(&qx, 10, None);
        assert!(exhaustive.is_complete());
        let classic = exhaustive_engine.rollup(&qx, 10);
        assert_eq!(
            exhaustive
                .items
                .iter()
                .map(|r| r.item.clone())
                .collect::<Vec<_>>(),
            classic,
            "{topic:?}: exhaustive progressive roll-up diverged from classic"
        );
        let exhaustive_drill = exhaustive_engine.drilldown_progressive(&qx, 10, None);
        let classic_drill = exhaustive_engine.drilldown(&qx, 10);
        assert_eq!(
            exhaustive_drill
                .items
                .iter()
                .map(|r| r.item.clone())
                .collect::<Vec<_>>(),
            classic_drill,
            "{topic:?}: exhaustive progressive drill-down diverged from classic"
        );

        // Racing keeps the exact top-k (same docs, same float bits) and
        // must never walk more than exhaustive.
        let raced = engine.rollup_progressive(&q, 10, None);
        assert!(raced.is_complete());
        assert_eq!(
            raced.items, exhaustive.items,
            "{topic:?}: racing changed the roll-up top-k"
        );
        let raced_drill = engine.drilldown_progressive(&q, 10, None);
        assert_eq!(
            raced_drill.items, exhaustive_drill.items,
            "{topic:?}: racing changed the drill-down top-k"
        );
        eprintln!(
            "progressive[{topic:?}]: rollup {} vs {} ({} cands, {} rounds); drill {} vs {} ({} cands, {} rounds)",
            raced.walks, exhaustive.walks, raced.candidates, raced.rounds,
            raced_drill.walks, exhaustive_drill.walks, raced_drill.candidates, raced_drill.rounds
        );
        racing_walks.push(raced.walks);
        exhaustive_walks.push(exhaustive.walks);
        drill_racing_walks.push(raced_drill.walks);
        drill_exhaustive_walks.push(exhaustive_drill.walks);
    }
    drop(exhaustive_engine);
    let median_u64 = |v: &mut Vec<u64>| {
        v.sort_unstable();
        v[v.len() / 2]
    };
    let reduction = |raced: u64, full: u64| {
        if full > 0 {
            1.0 - raced as f64 / full as f64
        } else {
            0.0
        }
    };
    // The ≥ 30% floor applies to the *roll-up* median: with ~850
    // candidates racing for k=10, most of the field separates from the
    // boundary within a round or two. Drill-down only fields ~a dozen
    // candidate subtopics for the same k, so successive halving has
    // structurally little to cut there — its (smaller) reduction is
    // recorded for the report but not floored.
    let progressive_walks_median = median_u64(&mut racing_walks);
    let exhaustive_walks_median = median_u64(&mut exhaustive_walks);
    let progressive_walks_reduction = reduction(progressive_walks_median, exhaustive_walks_median);
    let drill_walks_reduction = reduction(
        median_u64(&mut drill_racing_walks),
        median_u64(&mut drill_exhaustive_walks),
    );
    eprintln!(
        "progressive: median rollup walks/query {progressive_walks_median} raced vs \
         {exhaustive_walks_median} exhaustive ({:.1}% saved; drill-down {:.1}%)",
        progressive_walks_reduction * 100.0,
        drill_walks_reduction * 100.0
    );
    if std::env::var("NCX_SKIP_PERF_FLOORS").is_err() {
        assert!(
            progressive_walks_reduction >= 0.30,
            "early-termination top-k must cut median roll-up walks/query by ≥ 30%: \
             {progressive_walks_median} raced vs {exhaustive_walks_median} exhaustive \
             ({:.1}%)",
            progressive_walks_reduction * 100.0
        );
    }

    // ---- openloop group: fixed-rate sweep for the saturation knee ----
    // The closed loop above self-throttles; this sweep offers fixed
    // arrival rates (deterministic uniform schedule, latency measured
    // from scheduled arrival) and records the knee: the highest offered
    // rate the server still achieves within 90%. Wall-clock dependent,
    // so recorded but never asserted.
    let openloop_serve = ncexplorer::serve::NcxServe::open_replicas(
        &snap_dir,
        kg.clone(),
        NcxConfig {
            samples: 25,
            parallelism: Parallelism::Fixed(4),
            ..NcxConfig::default()
        },
        1,
        ncexplorer::serve::ServeConfig {
            max_in_flight: 4,
            queue_depth: 64,
            ..Default::default()
        },
    )
    .expect("open-loop serve");
    let rates: &[f64] = if cfg!(debug_assertions) {
        &[250.0, 1_000.0, 4_000.0]
    } else {
        &[250.0, 1_000.0, 4_000.0, 16_000.0, 64_000.0]
    };
    let mut openloop_knee_qps = 0.0f64;
    let mut openloop_knee_p99_us = 0.0f64;
    let mut openloop_top_achieved_qps = 0.0f64;
    for &rate in rates {
        let arrivals = ((rate * 0.25) as usize).clamp(100, 4000);
        let report = ncx_bench::loadgen::open_loop(
            &openloop_serve,
            &ncx_bench::loadgen::OpenLoopSpec {
                workers: 8,
                arrivals,
                rate,
                queries: &serve_queries,
                k: 50,
                deadline: Some(Duration::from_secs(120)),
                drilldown_every: 4,
                progressive: true,
                retry: None,
            },
        );
        eprintln!(
            "openloop: offered {rate:.0} qps → achieved {:.0} qps \
             (p99 {:.0}µs, {} complete / {} partial / {} rejected)",
            report.achieved_qps,
            report.p99.as_secs_f64() * 1e6,
            report.completed,
            report.partials,
            report.rejected
        );
        openloop_top_achieved_qps = openloop_top_achieved_qps.max(report.achieved_qps);
        if report.achieved_qps >= 0.9 * rate && rate > openloop_knee_qps {
            openloop_knee_qps = rate;
            openloop_knee_p99_us = report.p99.as_secs_f64() * 1e6;
        }
    }
    drop(openloop_serve);
    eprintln!(
        "openloop: saturation knee {openloop_knee_qps:.0} qps \
         (p99 {openloop_knee_p99_us:.0}µs at the knee)"
    );

    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let json = format!(
        "{{\n  \"profile\": \"{profile}\",\n  \"articles\": {articles},\n  \"postings\": {},\n  \"build_seconds\": {build_seconds:.3},\n  \"rollup_p50_us\": {rollup_p50_us:.1},\n  \"drilldown_p50_us\": {drilldown_p50_us:.1},\n  \"small_rollup_seq_p50_us\": {small_rollup_seq_us:.1},\n  \"small_rollup_par_p50_us\": {small_rollup_par_us:.1},\n  \"small_drilldown_seq_p50_us\": {small_drill_seq_us:.1},\n  \"small_drilldown_par_p50_us\": {small_drill_par_us:.1},\n  \"save_seconds\": {save_seconds:.3},\n  \"cold_open_seconds\": {cold_open_seconds:.3},\n  \"cold_open_speedup\": {cold_open_speedup:.0},\n  \"delta_articles\": {delta_articles},\n  \"ingest_to_queryable_seconds\": {ingest_to_queryable_seconds:.4},\n  \"ingest_to_queryable_speedup\": {flush_speedup:.0},\n  \"lazy_open_seconds\": {lazy_open_seconds:.4},\n  \"eager_layered_open_seconds\": {eager_open_seconds:.4},\n  \"walks\": {},\n  \"walks_per_sec\": {walks_per_sec:.0},\n  \"oracle_hit_rate\": {:.4},\n  \"serve_sessions\": {},\n  \"serve_p50_us\": {serve_p50_us:.1},\n  \"serve_p99_us\": {serve_p99_us:.1},\n  \"serve_qps\": {serve_qps:.0},\n  \"replica_count\": 2,\n  \"replica_sessions\": {},\n  \"replica_p50_us\": {replica_p50_us:.1},\n  \"replica_p99_us\": {replica_p99_us:.1},\n  \"replica_qps\": {replica_qps:.0},\n  \"progressive_walks_median\": {progressive_walks_median},\n  \"exhaustive_walks_median\": {exhaustive_walks_median},\n  \"progressive_walks_reduction\": {progressive_walks_reduction:.4},\n  \"progressive_drilldown_walks_reduction\": {drill_walks_reduction:.4},\n  \"openloop_knee_qps\": {openloop_knee_qps:.0},\n  \"openloop_knee_p99_us\": {openloop_knee_p99_us:.1},\n  \"openloop_top_achieved_qps\": {openloop_top_achieved_qps:.0}\n}}\n",
        engine.index().num_postings(),
        d.walk_stats.walks,
        d.oracle.hit_rate(),
        serve_report.sessions,
        replica_report.sessions,
    );
    eprintln!("scale harness metrics:\n{json}");
    eprintln!("engine diagnostics:\n{d}");

    std::fs::create_dir_all(format!("{root}/target")).ok();
    std::fs::write(format!("{root}/target/BENCH_scale.json"), &json).expect("write metrics");
    let baseline_path = format!("{root}/BENCH_scale.json");
    if std::env::var("NCX_UPDATE_BASELINE").is_ok() {
        std::fs::write(&baseline_path, &json).expect("update committed baseline");
    } else if let Ok(baseline) = std::fs::read_to_string(&baseline_path) {
        let same_profile = baseline.contains(&format!("\"profile\": \"{profile}\""))
            && json_f64(&baseline, "articles") == Some(articles as f64);
        if same_profile {
            let mut regressions = Vec::new();
            for (key, current) in [
                ("build_seconds", build_seconds),
                ("rollup_p50_us", rollup_p50_us),
                ("drilldown_p50_us", drilldown_p50_us),
            ] {
                if let Some(base) = json_f64(&baseline, key) {
                    if base > 0.0 && current > 2.0 * base {
                        regressions.push(format!("{key}: {current:.1} vs baseline {base:.1}"));
                    }
                }
            }
            if !regressions.is_empty() {
                eprintln!("perf regression vs BENCH_scale.json: {regressions:?}");
                if std::env::var("NCX_STRICT_BASELINE").is_ok() {
                    panic!("perf regression: {regressions:?}");
                }
            }
        }
    }
}
