//! Integration validation of the random-walk estimator on the *generated*
//! KG (not toy graphs): unbiasedness against exact path counting and the
//! variance advantage of reachability guidance — the mechanisms behind
//! Fig. 7 — plus the statistical contracts of the progressive executor:
//! mid-flight confidence intervals cover the exhaustive-walk estimate at
//! (about) their stated coverage, and deadline/budget-cut partial results
//! are always a prefix of the complete ranking.

use ncexplorer::core::relevance::context::exact_conn;
use ncexplorer::core::relevance::estimator::ConnEstimator;
use ncexplorer::core::{NcExplorer, NcxConfig, Parallelism};
use ncexplorer::datagen::{generate_corpus, generate_kg, CorpusConfig, KgGenConfig};
use ncexplorer::eval::error::relative_error;
use ncexplorer::kg::{InstanceId, KnowledgeGraph};
use ncexplorer::reach::TargetDistanceOracle;
use proptest::prelude::*;
use std::sync::Arc;

fn kg() -> KnowledgeGraph {
    generate_kg(&KgGenConfig {
        synth_per_group: 10,
        orphan_entities: 30,
        ..KgGenConfig::default()
    })
}

/// Pick (concept, context) pairs that actually have connectivity.
fn scored_pairs(kg: &KnowledgeGraph) -> Vec<(ncexplorer::kg::ConceptId, Vec<InstanceId>)> {
    let mut out = Vec::new();
    for name in ["Financial Crime", "Lawsuits", "International Trade"] {
        let c = kg.concept_by_name(name).unwrap();
        // context: a few bank/tech entities (connected through affinity
        // edges).
        let bank = kg.concept_by_name("Bank").unwrap();
        let ctx: Vec<InstanceId> = kg.members(bank).iter().copied().take(3).collect();
        out.push((c, ctx));
    }
    out
}

#[test]
fn estimator_tracks_exact_conn_on_generated_kg() {
    let kg = kg();
    let tau = 2;
    let beta = 0.5;
    let oracle = Arc::new(TargetDistanceOracle::new(tau, 256));
    let est = ConnEstimator::new(tau, beta, true, oracle);
    for (c, ctx) in scored_pairs(&kg) {
        let exact = exact_conn(&kg, c, &ctx, tau, beta);
        let (got, _) = est.estimate_conn(&kg, kg.members(c), &ctx, 40_000, 7);
        if exact == 0.0 {
            assert_eq!(got, 0.0);
        } else {
            let err = relative_error(got, exact);
            assert!(
                err < 0.1,
                "{}: est {got:.4} vs exact {exact:.4} (err {err:.3})",
                kg.concept_label(c)
            );
        }
    }
}

#[test]
fn guided_converges_faster_than_unguided() {
    let kg = kg();
    let tau = 2;
    let beta = 0.5;
    let samples = 50; // the paper's default sample budget
    let (c, ctx) = scored_pairs(&kg).remove(0);
    let exact = exact_conn(&kg, c, &ctx, tau, beta);
    assert!(exact > 0.0, "fixture must have connectivity");

    // Average error across many repetitions (different seeds).
    let reps = 60;
    let mut guided_err = 0.0;
    let mut unguided_err = 0.0;
    for rep in 0..reps {
        let g = ConnEstimator::new(
            tau,
            beta,
            true,
            Arc::new(TargetDistanceOracle::new(tau, 64)),
        );
        let u = ConnEstimator::new(
            tau,
            beta,
            false,
            Arc::new(TargetDistanceOracle::new(tau, 64)),
        );
        let (ge, _) = g.estimate_conn(&kg, kg.members(c), &ctx, samples, rep);
        let (ue, _) = u.estimate_conn(&kg, kg.members(c), &ctx, samples, rep + 1000);
        guided_err += relative_error(ge, exact);
        unguided_err += relative_error(ue, exact);
    }
    guided_err /= reps as f64;
    unguided_err /= reps as f64;
    assert!(
        guided_err < unguided_err,
        "guided {guided_err:.3} must beat unguided {unguided_err:.3} at {samples} samples"
    );
}

#[test]
fn oracle_reuse_across_queries() {
    let kg = kg();
    let oracle = Arc::new(TargetDistanceOracle::new(2, 256));
    let (c, ctx) = scored_pairs(&kg).remove(0);
    // One estimator per worker is the engine's pattern; the shared
    // oracle deduplicates the BFS work across them. (Within one
    // estimator, repeats resolve from its own memo and never reach the
    // oracle at all.)
    let est = ConnEstimator::new(2, 0.5, true, oracle.clone());
    est.estimate_conn(&kg, kg.members(c), &ctx, 100, 1);
    est.estimate_conn(&kg, kg.members(c), &ctx, 100, 2);
    let after_first = oracle.stats();
    assert!(
        after_first.misses <= ctx.len() as u64,
        "targets computed once"
    );
    assert_eq!(
        after_first.lookups(),
        after_first.misses,
        "repeat estimates on one estimator resolve from its memo"
    );
    let est2 = ConnEstimator::new(2, 0.5, true, oracle.clone());
    est2.estimate_conn(&kg, kg.members(c), &ctx, 100, 3);
    let stats = oracle.stats();
    assert_eq!(stats.misses, after_first.misses, "no BFS repeats");
    assert!(stats.hits > 0, "the second worker must hit the cache");
    assert!(stats.hit_rate() > 0.0 && stats.hit_rate() < 1.0);
}

// ---------------------------------------------------------------------
// Progressive-executor statistical contracts.

/// Fixture engine for the partial-prefix property: built once, shared by
/// every proptest case (the cases vary query, budget cap, and k — not
/// the corpus).
fn prefix_engine() -> &'static NcExplorer {
    static ENGINE: std::sync::OnceLock<NcExplorer> = std::sync::OnceLock::new();
    ENGINE.get_or_init(|| {
        let kg = Arc::new(kg());
        let corpus = generate_corpus(
            &kg,
            &CorpusConfig {
                articles: 100,
                ..CorpusConfig::default()
            },
        );
        NcExplorer::build(
            kg,
            corpus.store,
            NcxConfig {
                samples: 12,
                parallelism: Parallelism::Fixed(1),
                ..NcxConfig::default()
            },
        )
    })
}

/// The engine's estimator recipe, minus the shared caches (caching never
/// changes walk values, only who pays for BFS/bitset construction).
fn prefix_estimator() -> ConnEstimator {
    let cfg = prefix_engine().config();
    ConnEstimator::with_budget(
        cfg.tau,
        cfg.beta,
        cfg.guided,
        Arc::new(TargetDistanceOracle::new(cfg.tau, 256)),
        cfg.walk_budget,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A mid-flight progressive interval is a real confidence interval:
    /// across independent seeds, the z = 1.96 interval taken after a
    /// partial prefix of the sample budget contains the exhaustive-walk
    /// estimate (40k samples ≈ the estimand) at no less than 75%
    /// empirical coverage — the stated 95%, with slack for the CLT
    /// approximation on the skewed walk-value distribution and the
    /// finite seed count.
    #[test]
    fn progressive_intervals_cover_the_exhaustive_estimate(
        pair in 0usize..3,
        tranche in 5u32..40,
        checkpoint in 60u32..160,
    ) {
        let kg = kg();
        let (c, ctx) = scored_pairs(&kg).remove(pair);
        let est = ConnEstimator::new(2, 0.5, true, Arc::new(TargetDistanceOracle::new(2, 256)));
        // Zero-connectivity pairs are kept: their intervals must then
        // degenerate to [0, 0] and still contain the (zero) estimate.
        let (exhaustive, _) = est.estimate_conn(&kg, kg.members(c), &ctx, 40_000, 9001);
        let seeds = 48u64;
        let mut contained = 0u32;
        let mut measured = 0u32;
        for seed in 0..seeds {
            let mut p = est.begin_conn_concept(&kg, c, &ctx, 400, seed);
            while !p.is_done() && p.consumed() < checkpoint {
                let step = tranche.min(checkpoint - p.consumed());
                est.advance(&kg, &mut p, step);
            }
            if p.is_done() {
                // Finished estimates report a point, not an interval.
                continue;
            }
            measured += 1;
            let (lo, hi) = p.interval(1.96);
            if (lo..=hi).contains(&exhaustive) {
                contained += 1;
            }
        }
        prop_assert!(
            measured > seeds as u32 / 2,
            "fixture must leave most runs mid-flight ({measured}/{seeds})"
        );
        let coverage = f64::from(contained) / f64::from(measured);
        prop_assert!(
            coverage >= 0.75,
            "empirical coverage {coverage:.2} ({contained}/{measured}) far below the stated 95%"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// A budget-cut partial result is always a prefix of the complete
    /// ranking — same items, same order, same bits — for any cap, query,
    /// and k; and a cap generous enough to complete reproduces the
    /// complete result exactly.
    #[test]
    fn budget_cut_partials_are_a_prefix_of_the_complete_ranking(
        qix in 0usize..4,
        cap in 1u64..4000,
        k in 1usize..12,
    ) {
        use ncexplorer::core::drilldown::SbrFactors;
        use ncexplorer::core::progressive;
        let topics: [&[&str]; 4] = [
            &["Financial Crime"],
            &["Lawsuits"],
            &["International Trade"],
            &["Financial Crime", "Bank"],
        ];
        let engine = prefix_engine();
        let q = engine.query(topics[qix]).unwrap();
        let mut capped_cfg = engine.config().clone();
        capped_cfg.progressive.max_walks = Some(cap);

        let complete = engine.rollup_progressive(&q, k, None);
        prop_assert!(complete.is_complete());
        let capped = progressive::rollup_progressive(
            engine.index(),
            engine.kg(),
            &q,
            k,
            &capped_cfg,
            engine.pool(),
            &prefix_estimator(),
            None,
            None,
        );
        prop_assert!(capped.walks <= complete.walks.max(cap));
        prop_assert!(capped.items.len() <= complete.items.len());
        for (got, want) in capped.items.iter().zip(&complete.items) {
            prop_assert_eq!(got, want, "roll-up partial must be a prefix");
        }
        let completeness = capped.completeness();
        prop_assert!((0.0..=1.0).contains(&completeness));
        if capped.is_complete() {
            prop_assert_eq!(&capped.items, &complete.items);
            prop_assert!((completeness - 1.0).abs() < f64::EPSILON);
        }

        let complete_drill = engine.drilldown_progressive(&q, k, None);
        prop_assert!(complete_drill.is_complete());
        let capped_drill = progressive::drilldown_progressive(
            engine.index(),
            engine.kg(),
            &q,
            k,
            &capped_cfg,
            engine.pool(),
            &prefix_estimator(),
            SbrFactors::CSD,
            None,
            None,
        );
        prop_assert!(capped_drill.items.len() <= complete_drill.items.len());
        for (got, want) in capped_drill.items.iter().zip(&complete_drill.items) {
            prop_assert_eq!(got, want, "drill-down partial must be a prefix");
        }
        if capped_drill.is_complete() {
            prop_assert_eq!(&capped_drill.items, &complete_drill.items);
        }
    }
}
