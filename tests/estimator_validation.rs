//! Integration validation of the random-walk estimator on the *generated*
//! KG (not toy graphs): unbiasedness against exact path counting and the
//! variance advantage of reachability guidance — the mechanisms behind
//! Fig. 7.

use ncexplorer::core::relevance::context::exact_conn;
use ncexplorer::core::relevance::estimator::ConnEstimator;
use ncexplorer::datagen::{generate_kg, KgGenConfig};
use ncexplorer::eval::error::relative_error;
use ncexplorer::kg::{InstanceId, KnowledgeGraph};
use ncexplorer::reach::TargetDistanceOracle;
use std::sync::Arc;

fn kg() -> KnowledgeGraph {
    generate_kg(&KgGenConfig {
        synth_per_group: 10,
        orphan_entities: 30,
        ..KgGenConfig::default()
    })
}

/// Pick (concept, context) pairs that actually have connectivity.
fn scored_pairs(kg: &KnowledgeGraph) -> Vec<(ncexplorer::kg::ConceptId, Vec<InstanceId>)> {
    let mut out = Vec::new();
    for name in ["Financial Crime", "Lawsuits", "International Trade"] {
        let c = kg.concept_by_name(name).unwrap();
        // context: a few bank/tech entities (connected through affinity
        // edges).
        let bank = kg.concept_by_name("Bank").unwrap();
        let ctx: Vec<InstanceId> = kg.members(bank).iter().copied().take(3).collect();
        out.push((c, ctx));
    }
    out
}

#[test]
fn estimator_tracks_exact_conn_on_generated_kg() {
    let kg = kg();
    let tau = 2;
    let beta = 0.5;
    let oracle = Arc::new(TargetDistanceOracle::new(tau, 256));
    let est = ConnEstimator::new(tau, beta, true, oracle);
    for (c, ctx) in scored_pairs(&kg) {
        let exact = exact_conn(&kg, c, &ctx, tau, beta);
        let (got, _) = est.estimate_conn(&kg, kg.members(c), &ctx, 40_000, 7);
        if exact == 0.0 {
            assert_eq!(got, 0.0);
        } else {
            let err = relative_error(got, exact);
            assert!(
                err < 0.1,
                "{}: est {got:.4} vs exact {exact:.4} (err {err:.3})",
                kg.concept_label(c)
            );
        }
    }
}

#[test]
fn guided_converges_faster_than_unguided() {
    let kg = kg();
    let tau = 2;
    let beta = 0.5;
    let samples = 50; // the paper's default sample budget
    let (c, ctx) = scored_pairs(&kg).remove(0);
    let exact = exact_conn(&kg, c, &ctx, tau, beta);
    assert!(exact > 0.0, "fixture must have connectivity");

    // Average error across many repetitions (different seeds).
    let reps = 60;
    let mut guided_err = 0.0;
    let mut unguided_err = 0.0;
    for rep in 0..reps {
        let g = ConnEstimator::new(
            tau,
            beta,
            true,
            Arc::new(TargetDistanceOracle::new(tau, 64)),
        );
        let u = ConnEstimator::new(
            tau,
            beta,
            false,
            Arc::new(TargetDistanceOracle::new(tau, 64)),
        );
        let (ge, _) = g.estimate_conn(&kg, kg.members(c), &ctx, samples, rep);
        let (ue, _) = u.estimate_conn(&kg, kg.members(c), &ctx, samples, rep + 1000);
        guided_err += relative_error(ge, exact);
        unguided_err += relative_error(ue, exact);
    }
    guided_err /= reps as f64;
    unguided_err /= reps as f64;
    assert!(
        guided_err < unguided_err,
        "guided {guided_err:.3} must beat unguided {unguided_err:.3} at {samples} samples"
    );
}

#[test]
fn oracle_reuse_across_queries() {
    let kg = kg();
    let oracle = Arc::new(TargetDistanceOracle::new(2, 256));
    let (c, ctx) = scored_pairs(&kg).remove(0);
    // One estimator per worker is the engine's pattern; the shared
    // oracle deduplicates the BFS work across them. (Within one
    // estimator, repeats resolve from its own memo and never reach the
    // oracle at all.)
    let est = ConnEstimator::new(2, 0.5, true, oracle.clone());
    est.estimate_conn(&kg, kg.members(c), &ctx, 100, 1);
    est.estimate_conn(&kg, kg.members(c), &ctx, 100, 2);
    let after_first = oracle.stats();
    assert!(
        after_first.misses <= ctx.len() as u64,
        "targets computed once"
    );
    assert_eq!(
        after_first.lookups(),
        after_first.misses,
        "repeat estimates on one estimator resolve from its memo"
    );
    let est2 = ConnEstimator::new(2, 0.5, true, oracle.clone());
    est2.estimate_conn(&kg, kg.members(c), &ctx, 100, 3);
    let stats = oracle.stats();
    assert_eq!(stats.misses, after_first.misses, "no BFS repeats");
    assert!(stats.hits > 0, "the second worker must hit the cache");
    assert!(stats.hit_rate() > 0.0 && stats.hit_rate() < 1.0);
}
