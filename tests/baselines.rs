//! Cross-engine integration: all five retrieval methods of the paper run
//! against the same generated corpus, and the ground truth arbitrates.

use ncexplorer::core::{NcExplorer, NcxConfig};
use ncexplorer::datagen::{generate_corpus, generate_kg, CorpusConfig, KgGenConfig};
use ncexplorer::embed::{BertBaseline, TextEmbedder};
use ncexplorer::eval::ndcg::ndcg_at_k;
use ncexplorer::index::LuceneEngine;
use ncexplorer::kg::{DocId, KnowledgeGraph};
use ncexplorer::newslink::search::NewsLinkConfig;
use ncexplorer::newslink::{NewsLinkBert, NewsLinkEngine};
use ncexplorer::text::{GazetteerLinker, NlpPipeline};
use std::sync::Arc;

struct Fixture {
    kg: Arc<KnowledgeGraph>,
    corpus: ncexplorer::datagen::GeneratedCorpus,
    nlp: NlpPipeline,
    lucene: LuceneEngine,
    bert: BertBaseline,
    newslink: NewsLinkEngine,
    newslink_bert: NewsLinkBert,
    ncx: NcExplorer,
}

fn fixture() -> Fixture {
    let kg = Arc::new(generate_kg(&KgGenConfig::default()));
    let corpus = generate_corpus(
        &kg,
        &CorpusConfig {
            articles: 200,
            ..CorpusConfig::default()
        },
    );
    let nlp = NlpPipeline::new(GazetteerLinker::build(&kg));
    let mut lucene = LuceneEngine::new();
    lucene.index_store(&corpus.store);
    let bert = BertBaseline::build_flat(TextEmbedder::new(128), &corpus.store);
    let newslink = NewsLinkEngine::build(&kg, &nlp, &corpus.store, NewsLinkConfig::default());
    let newslink_bert = NewsLinkBert::build(
        &kg,
        &nlp,
        &corpus.store,
        NewsLinkConfig::default(),
        TextEmbedder::new(128),
    );
    // NCExplorer owns its corpus; the fixture keeps the generated store
    // for the other engines and the ground truth, so hand it a clone.
    let ncx = NcExplorer::build(
        kg.clone(),
        corpus.store.clone(),
        NcxConfig {
            samples: 15,
            ..NcxConfig::default()
        },
    );
    Fixture {
        kg,
        corpus,
        nlp,
        lucene,
        bert,
        newslink,
        newslink_bert,
        ncx,
    }
}

fn grades(f: &Fixture, concepts: &[&str], docs: &[DocId]) -> Vec<f64> {
    let ids: Vec<_> = concepts
        .iter()
        .map(|c| f.kg.concept_by_name(c).unwrap())
        .collect();
    // Strict conjunctive grading: a hit must satisfy every facet, the
    // guarantee NCExplorer's matching semantics provide and keyword
    // matching does not.
    docs.iter()
        .map(|&d| f.corpus.true_grade_strict(&f.kg, &ids, d))
        .collect()
}

#[test]
fn every_engine_answers_topic_queries() {
    let f = fixture();
    let text_query = "fraud money laundering bank";
    assert!(!f.lucene.search(text_query, 5).is_empty());
    assert!(!f.bert.search(text_query, 5).is_empty());
    assert!(!f.newslink.search(&f.kg, &f.nlp, "fraud DBS", 5).is_empty());
    assert!(!f
        .newslink_bert
        .search(&f.kg, &f.nlp, "fraud DBS", 5)
        .is_empty());
    let q = f.ncx.query(&["Financial Crime", "Bank"]).unwrap();
    assert!(!f.ncx.rollup(&q, 5).is_empty());
}

#[test]
fn ncexplorer_beats_lucene_on_concept_queries() {
    // The paper's headline: concept-style queries favour NCExplorer over
    // keyword matching because roll-up covers domain vocabulary the query
    // string lacks.
    let f = fixture();
    let mut ncx_total = 0.0;
    let mut lucene_total = 0.0;
    let cases: &[(&[&str], &str)] = &[
        (&["Financial Crime", "Bank"], "financial crime banks"),
        (
            &["Lawsuits", "Technology Company"],
            "lawsuits technology companies",
        ),
        (
            &["Elections", "African Country"],
            "elections african countries",
        ),
        (
            &["Mergers & Acquisitions", "Bank"],
            "mergers acquisitions banks",
        ),
    ];
    let mut strict_wins = 0;
    for (concepts, text) in cases {
        let q = f.ncx.query(concepts).unwrap();
        let ncx_docs: Vec<DocId> = f.ncx.rollup(&q, 5).into_iter().map(|h| h.doc).collect();
        let lucene_docs: Vec<DocId> = f
            .lucene
            .search(text, 5)
            .into_iter()
            .map(|(d, _)| d)
            .collect();
        let ncx_score = ndcg_at_k(&grades(&f, concepts, &ncx_docs), 5)
            * mean_grade(&grades(&f, concepts, &ncx_docs));
        let lucene_score = ndcg_at_k(&grades(&f, concepts, &lucene_docs), 5)
            * mean_grade(&grades(&f, concepts, &lucene_docs));
        ncx_total += ncx_score;
        lucene_total += lucene_score;
        if ncx_score > lucene_score + 1e-9 {
            strict_wins += 1;
        }
    }
    assert!(
        ncx_total >= lucene_total,
        "NCExplorer {ncx_total:.3} must not lose to Lucene {lucene_total:.3}"
    );
    assert!(
        strict_wins >= 1,
        "NCExplorer must strictly win at least one query \
         (ncx {ncx_total:.3} vs lucene {lucene_total:.3})"
    );
    // And NCExplorer must be near the strict-grading ceiling overall
    // (top-5, as in the paper's evaluation protocol).
    assert!(
        ncx_total > 0.7 * 4.5 * cases.len() as f64,
        "NCExplorer strict-grade score too low: {ncx_total:.3}"
    );
}

fn mean_grade(g: &[f64]) -> f64 {
    if g.is_empty() {
        0.0
    } else {
        g.iter().sum::<f64>() / g.len() as f64
    }
}

#[test]
fn ncexplorer_results_satisfy_all_query_facets() {
    let f = fixture();
    let q = f.ncx.query(&["Financial Crime", "Bank"]).unwrap();
    let crime = f.kg.concept_by_name("Financial Crime").unwrap();
    let bank = f.kg.concept_by_name("Bank").unwrap();
    for hit in f.ncx.rollup(&q, 5) {
        // Every hit must actually mention a crime term and a bank (the
        // conjunctive guarantee lexical methods lack).
        let ents = f.ncx.index().entity_index.entities_of(hit.doc);
        let has_crime = ents.iter().any(|&(v, _)| f.kg.is_member(crime, v));
        let has_bank = ents.iter().any(|&(v, _)| f.kg.is_member(bank, v));
        assert!(has_crime && has_bank, "doc {:?} misses a facet", hit.doc);
    }
}

#[test]
fn hybrid_improves_over_plain_newslink_coverage() {
    let f = fixture();
    // A query whose surface form appears nowhere: entity + concept words.
    let query = "FTX fraud";
    let nl = f.newslink.search(&f.kg, &f.nlp, query, 10);
    let nlb = f.newslink_bert.search(&f.kg, &f.nlp, query, 10);
    // Both retrieve; the hybrid must retrieve at least as many docs with
    // lexical-crime signal (embedding recovers keyword evidence).
    assert!(!nl.is_empty());
    assert!(!nlb.is_empty());
}

#[test]
fn engines_agree_on_obvious_lexical_match() {
    let f = fixture();
    // Take an actual article title as the query: everyone should rank
    // that article first (or near-first).
    let target = DocId::new(0);
    let title = f.ncx.store().get(target).title.clone();
    let lucene_top = f.lucene.search(&title, 3);
    assert!(
        lucene_top.iter().any(|&(d, _)| d == target),
        "Lucene must find the verbatim title"
    );
    let bert_top = f.bert.search(&title, 3);
    assert!(
        bert_top.iter().any(|&(d, _)| d == target),
        "BERT must find the verbatim title"
    );
}
