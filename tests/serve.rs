//! Serving-layer integration: concurrent sessions over one engine,
//! replica fan-out from one snapshot directory, deadline/admission
//! contracts, and the release-mode stress floor.
//!
//! The load-bearing invariant throughout: multiplexing must never
//! change an answer. Every concurrent result is compared bit-for-bit
//! against the sequential single-caller reference.

use ncexplorer::core::drilldown::Subtopic;
use ncexplorer::core::error::QueryError;
use ncexplorer::core::rollup::RollupHit;
use ncexplorer::core::{ConceptQuery, NcExplorer, NcxConfig, Parallelism};
use ncexplorer::datagen::{generate_corpus, generate_kg, CorpusConfig, KgGenConfig};
use ncexplorer::serve::{NcxServe, ServeConfig};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOPICS: [&str; 3] = ["Financial Crime", "Elections", "Mergers & Acquisitions"];

fn build_engine(articles: usize) -> NcExplorer {
    let kg = Arc::new(generate_kg(&KgGenConfig::default()));
    let corpus = generate_corpus(
        &kg,
        &CorpusConfig {
            articles,
            ..CorpusConfig::default()
        },
    );
    NcExplorer::build(
        kg,
        corpus.store,
        NcxConfig {
            samples: 10,
            parallelism: Parallelism::Fixed(2),
            ..NcxConfig::default()
        },
    )
}

/// The single-caller answers every concurrent path must reproduce.
fn reference(engine: &NcExplorer, k: usize) -> Vec<(ConceptQuery, Vec<RollupHit>, Vec<Subtopic>)> {
    TOPICS
        .iter()
        .map(|t| {
            let q = engine.query(&[t]).unwrap();
            let hits = engine.rollup(&q, k);
            let subs = engine.drilldown(&q, k);
            (q, hits, subs)
        })
        .collect()
}

#[test]
fn four_concurrent_sessions_match_the_sequential_reference() {
    let engine = build_engine(120);
    let want = reference(&engine, 10);
    let serve = NcxServe::new(engine, ServeConfig::default());
    std::thread::scope(|scope| {
        for s in 0..4 {
            let want = &want;
            let serve = &serve;
            scope.spawn(move || {
                let session = serve.session();
                // Each session walks the query mix from its own offset,
                // so cache hits and misses interleave across sessions.
                for i in 0..12 {
                    let (q, hits, subs) = &want[(s + i) % want.len()];
                    let got = session.rollup(q, 10).unwrap();
                    assert_eq!(*got, *hits, "session {s}: roll-up diverged");
                    let got = session.drilldown(q, 10).unwrap();
                    assert_eq!(*got, *subs, "session {s}: drill-down diverged");
                }
            });
        }
    });
    let stats = serve.stats();
    assert_eq!(stats.completed, 4 * 12 * 2);
    assert_eq!(stats.rejected_overload + stats.rejected_deadline, 0);
    assert!(
        stats.cache_hits > 0,
        "repeated queries must hit the cache: {stats:?}"
    );
}

#[test]
fn replicas_cold_opened_from_one_snapshot_serve_identically() {
    let engine = build_engine(100);
    let kg_arc = engine.kg_handle();
    let want = reference(&engine, 10);
    let dir = std::env::temp_dir().join(format!("ncx_serve_replicas_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    engine.save(&dir).unwrap();

    let serve = NcxServe::open_replicas(
        &dir,
        kg_arc,
        NcxConfig {
            samples: 10,
            parallelism: Parallelism::Fixed(2),
            ..NcxConfig::default()
        },
        2,
        // Cache off: every query must actually execute on a replica, so
        // round-robin provably lands on both.
        ServeConfig {
            cache_capacity: 0,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    assert_eq!(serve.replica_count(), 2);

    std::thread::scope(|scope| {
        for s in 0..4 {
            let want = &want;
            let serve = &serve;
            scope.spawn(move || {
                let session = serve.session();
                for i in 0..8 {
                    let (q, hits, subs) = &want[(s + i) % want.len()];
                    assert_eq!(*session.rollup(q, 10).unwrap(), *hits);
                    assert_eq!(*session.drilldown(q, 10).unwrap(), *subs);
                }
            });
        }
    });
    let stats = serve.stats();
    assert_eq!(stats.completed, 4 * 8 * 2);
    assert_eq!(stats.cache_hits, 0, "cache was disabled");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_side_ingest_updates_every_replica() {
    let engine = build_engine(60);
    let kg = engine.kg_handle();
    let dir = std::env::temp_dir().join(format!("ncx_serve_ingest_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    engine.save(&dir).unwrap();
    let serve = NcxServe::open_replicas(
        &dir,
        kg,
        NcxConfig {
            samples: 10,
            parallelism: Parallelism::Fixed(2),
            ..NcxConfig::default()
        },
        2,
        ServeConfig {
            cache_capacity: 0,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let q = serve.query(&["Financial Crime"]).unwrap();
    let before_hits = serve.rollup(&q, 500).unwrap();
    let before = before_hits.len();
    assert!(before > 0 && before < 500);
    // Re-ingest the text of a known matching article: the duplicate
    // carries the same entity mentions, so it must match the query too.
    let (title, body) = serve.with_engine(|e| {
        let a = e.document(before_hits[0].doc);
        (a.title.clone(), a.body.clone())
    });
    serve.ingest_article(
        ncexplorer::index::NewsSource::Reuters,
        &title,
        &body,
        u32::MAX - 1,
    );
    // With the cache off, consecutive queries round-robin across both
    // replicas: both must see the new article.
    for _ in 0..2 {
        let after = serve.rollup(&q, 500).unwrap();
        assert_eq!(after.len(), before + 1, "a replica missed the ingest");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite (c): one engine, many OS threads, no serving layer — the
/// `NcExplorer: Send + Sync` contract exercised directly.
#[test]
fn shared_engine_queries_from_many_os_threads() {
    let engine = Arc::new(build_engine(100));
    let want = reference(&engine, 10);
    let handles: Vec<_> = (0..4)
        .map(|s| {
            let engine = engine.clone();
            let want = want.clone();
            std::thread::spawn(move || {
                for i in 0..6 {
                    let (q, hits, subs) = &want[(s + i) % want.len()];
                    assert_eq!(engine.rollup(q, 10), *hits, "thread {s}");
                    assert_eq!(engine.drilldown(q, 10), *subs, "thread {s}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite (d): expired deadlines reject without cache residue;
    /// generous deadlines complete with the exact unbounded answer and
    /// never overshoot their budget by more than the check interval
    /// (plus scheduler noise).
    #[test]
    fn deadlines_reject_cleanly_or_complete_exactly(
        topic_idx in 0usize..TOPICS.len(),
        k in 1usize..20,
        expired_first in any::<bool>(),
    ) {
        // One engine for the whole property run (builds dominate).
        use std::sync::OnceLock;
        type Reference = Vec<(ConceptQuery, Vec<RollupHit>)>;
        static SERVE: OnceLock<(NcxServe, Reference)> = OnceLock::new();
        let (serve, reference) = SERVE.get_or_init(|| {
            let engine = build_engine(80);
            let refs = TOPICS
                .iter()
                .map(|t| {
                    let q = engine.query(&[t]).unwrap();
                    let hits = engine.rollup(&q, 64);
                    (q, hits)
                })
                .collect();
            (NcxServe::new(engine, ServeConfig::default()), refs)
        });
        let (q, unbounded) = &reference[topic_idx];

        let run_expired = |q: &ConceptQuery, k: usize| {
            let cached_before = serve.cached_entries();
            let t = Instant::now();
            // `k + 1000` keeps the key out of the cache: an expired query
            // must be rejected by the engine, not answered from a hit a
            // previous case left behind.
            let err = serve
                .rollup_deadline(q, k + 1000, Some(Duration::ZERO))
                .unwrap_err();
            let elapsed = t.elapsed();
            prop_assert!(matches!(err, QueryError::DeadlineExceeded { .. }), "{err}");
            // Zero budget ⇒ the first check fires; the query may consume
            // at most one check interval of work. Generous wall bound —
            // these queries take microseconds, the bound catches only
            // "ran to completion anyway".
            prop_assert!(
                elapsed < Duration::from_millis(250),
                "expired query ran {elapsed:?}"
            );
            prop_assert_eq!(
                serve.cached_entries(), cached_before,
                "rejected query left cache residue"
            );
            Ok(())
        };
        let run_generous = |q: &ConceptQuery, k: usize| {
            let limit = Duration::from_secs(3600);
            let t = Instant::now();
            let got = serve.rollup_deadline(q, k, Some(limit)).unwrap();
            let elapsed = t.elapsed();
            let mut want = unbounded.clone();
            want.truncate(k);
            prop_assert_eq!(&*got, &want, "bounded result diverged");
            prop_assert!(
                elapsed <= limit + serve.config().check_interval,
                "overshot: {elapsed:?}"
            );
            Ok(())
        };
        // Order matters for the residue assertion, so exercise both.
        if expired_first {
            run_expired(q, k)?;
            run_generous(q, k)?;
        } else {
            run_generous(q, k)?;
            run_expired(q, k)?;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Injected faults — a storage fault at the matching site, a panic
    /// at the merge site — surface as typed retryable
    /// [`QueryError::Internal`] rejections, leave no cache residue, and
    /// (the gate being one-shot) the immediately retried query returns
    /// the exact reference answer. Extends the deadline no-residue
    /// property above to the fault classes.
    #[test]
    fn injected_faults_reject_cleanly_without_cache_residue(
        topic_idx in 0usize..TOPICS.len(),
        k in 1usize..20,
        panic_at_merge in any::<bool>(),
    ) {
        use ncexplorer::core::fault;
        use std::sync::OnceLock;
        type Reference = Vec<(ConceptQuery, Vec<RollupHit>)>;
        static SERVE: OnceLock<(NcxServe, Reference)> = OnceLock::new();
        let (serve, reference) = SERVE.get_or_init(|| {
            let engine = build_engine(80);
            let refs = TOPICS
                .iter()
                .map(|t| {
                    let q = engine.query(&[t]).unwrap();
                    let hits = engine.rollup(&q, 64);
                    (q, hits)
                })
                .collect();
            (NcxServe::new(engine, ServeConfig::default()), refs)
        });
        let (q, unbounded) = &reference[topic_idx];

        let cached_before = serve.cached_entries();
        // Thread-local arming: the fault fires only on this thread's
        // next pass through the chosen site, so concurrent test binaries
        // and the shared server stay unaffected.
        if panic_at_merge {
            fault::arm_local(fault::SITE_MERGE, fault::FaultMode::Panic, 0);
        } else {
            fault::arm_local(fault::SITE_MATCHING, fault::FaultMode::StoreFault, 0);
        }
        // `k + 1000` keeps the key out of the cache (same trick as the
        // deadline property): the fault must reach the engine.
        let err = serve.rollup(q, k + 1000).unwrap_err();
        prop_assert!(matches!(err, QueryError::Internal { .. }), "{err}");
        prop_assert!(err.is_retryable(), "replica-local faults are retryable");
        prop_assert_eq!(
            serve.cached_entries(), cached_before,
            "faulted query left cache residue"
        );
        // The gate is one-shot: the retry executes cleanly and matches
        // the unbounded reference bit-for-bit.
        let got = serve.rollup(q, k).unwrap();
        let mut want = unbounded.clone();
        want.truncate(k);
        prop_assert_eq!(&*got, &want, "post-fault answer diverged");
    }
}

/// Release-mode stress: a session fleet over one engine must complete
/// every admitted query, and serving latency must stay interactive.
/// Debug wall-clock is meaningless, so the latency floor is
/// release-only; `NCX_SKIP_PERF_FLOORS=1` opts out on weak hardware.
#[test]
fn serve_stress_counts_reconcile_and_p99_is_interactive() {
    let engine = build_engine(200);
    let queries: Vec<ConceptQuery> = TOPICS.iter().map(|t| engine.query(&[t]).unwrap()).collect();
    let serve = NcxServe::new(
        engine,
        ServeConfig {
            max_in_flight: 4,
            queue_depth: 64,
            ..ServeConfig::default()
        },
    );
    let spec = ncx_bench::loadgen::LoadSpec {
        sessions: 8,
        queries_per_session: if cfg!(debug_assertions) { 20 } else { 100 },
        queries: &queries,
        k: 10,
        deadline: Some(Duration::from_secs(30)),
        drilldown_every: 4,
        retry: None,
    };
    let report = ncx_bench::loadgen::closed_loop(&serve, &spec);
    let total = (spec.sessions * spec.queries_per_session) as u64;
    assert_eq!(
        report.completed + report.rejected,
        total,
        "queries lost: {report:?}"
    );
    // The queue (64) exceeds the session count, so nothing should have
    // been rejected for overload; a 30s deadline cannot fire on queries
    // this small unless the machine stalls outright.
    assert_eq!(report.rejected, 0, "{report:?}");
    let stats = serve.stats();
    assert_eq!(stats.completed, total);
    eprintln!(
        "serve_stress: {} sessions, p50 {:?}, p99 {:?}, {:.0} qps",
        report.sessions, report.p50, report.p99, report.qps
    );
    if !cfg!(debug_assertions) && std::env::var("NCX_SKIP_PERF_FLOORS").is_err() {
        assert!(
            report.p99 < Duration::from_millis(250),
            "serving p99 {:?} is not interactive",
            report.p99
        );
    }
}

/// Tight-deadline progressive stress: open-loop traffic whose deadline
/// fires mid-query must be answered with typed partial results — never
/// rejected, never panicking — and the accounting must reconcile.
/// Alongside, the racing walk-savings floor is pinned at the serving
/// layer: walk counts are seed-deterministic, so the ≥ 30% roll-up
/// reduction holds in any profile (`NCX_SKIP_PERF_FLOORS=1` opts out).
#[test]
fn serve_stress_tight_deadlines_yield_partials_not_rejections() {
    let engine = build_engine(200);
    let queries: Vec<ConceptQuery> = TOPICS.iter().map(|t| engine.query(&[t]).unwrap()).collect();
    // Cache off: a hit would answer instantly and dodge the deadline;
    // this test is about queries that actually run out of time.
    let serve = NcxServe::new(
        engine,
        ServeConfig {
            max_in_flight: 4,
            queue_depth: 64,
            cache_capacity: 0,
            ..ServeConfig::default()
        },
    );

    // Direct partial-contract probe: a too-tight deadline yields a
    // partial whose items are a prefix of the complete ranking.
    let complete = serve.rollup_progressive(&queries[0], 10).unwrap();
    assert!(complete.is_complete());
    let squeezed = serve
        .rollup_progressive_deadline(&queries[0], 10, Some(Duration::from_micros(1)))
        .unwrap();
    assert!(!squeezed.is_complete(), "1µs must not finish this query");
    let completeness = squeezed.completeness();
    assert!((0.0..1.0).contains(&completeness), "{completeness}");
    assert!(squeezed.items.len() <= complete.items.len());
    for (got, want) in squeezed.items.iter().zip(&complete.items) {
        assert_eq!(got, want, "partial is not a prefix of the complete ranking");
    }

    // Open-loop tight-deadline traffic: every arrival answered, none
    // rejected, and the deadline short enough that partials do appear.
    let spec = ncx_bench::loadgen::OpenLoopSpec {
        workers: 8,
        arrivals: if cfg!(debug_assertions) { 200 } else { 800 },
        rate: 2_000.0,
        queries: &queries,
        k: 10,
        deadline: Some(Duration::from_micros(500)),
        drilldown_every: 4,
        progressive: true,
        retry: None,
    };
    let report = ncx_bench::loadgen::open_loop(&serve, &spec);
    assert_eq!(
        report.completed + report.partials,
        spec.arrivals as u64,
        "progressive arrivals lost: {report:?}"
    );
    assert_eq!(
        report.rejected, 0,
        "tight deadlines must not reject: {report:?}"
    );
    assert!(
        report.partials > 0,
        "a 500µs budget must cut at least one query: {report:?}"
    );
    let stats = serve.stats();
    assert_eq!(stats.rejected_deadline, 0, "{stats:?}");
    assert!(stats.partials >= report.partials, "{stats:?}");
    eprintln!(
        "tight-deadline stress: {} complete / {} partial at {:.0} qps offered",
        report.completed, report.partials, report.offered_qps
    );

    // Racing walk-savings floor, measured through the serving engine at
    // the paper's sample budget (the fleet engine runs samples = 10 to
    // keep the stress cheap, which leaves racing only one boundary
    // round — too coarse to measure savings against).
    let (raced, exhaustive) = serve.with_engine(|e| {
        let mut cfg = e.config().clone();
        cfg.samples = 40;
        let run = |racing: bool| {
            let mut cfg = cfg.clone();
            cfg.progressive.racing = racing;
            let estimator = ncexplorer::core::relevance::ConnEstimator::with_budget(
                cfg.tau,
                cfg.beta,
                cfg.guided,
                Arc::new(ncexplorer::reach::TargetDistanceOracle::new(cfg.tau, 256)),
                cfg.walk_budget,
            );
            ncexplorer::core::progressive::rollup_progressive(
                e.index(),
                e.kg(),
                &queries[0],
                10,
                &cfg,
                e.pool(),
                &estimator,
                None,
                None,
            )
            .walks
        };
        (run(true), run(false))
    });
    assert!(raced <= exhaustive, "racing must never walk more");
    let reduction = 1.0 - raced as f64 / exhaustive.max(1) as f64;
    eprintln!("tight-deadline stress: walks/query {raced} raced vs {exhaustive} exhaustive");
    if std::env::var("NCX_SKIP_PERF_FLOORS").is_err() {
        assert!(
            reduction >= 0.30,
            "racing must cut roll-up walks/query by ≥ 30%: {raced} vs {exhaustive} \
             ({:.1}%)",
            reduction * 100.0
        );
    }
}

/// The value of the sample line `<name> <value>` in a Prometheus text
/// exposition. Panics if the series is missing — which is the point:
/// the metrics tests use it to prove a series is exported.
fn metric_value(text: &str, name: &str) -> f64 {
    text.lines()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing from exposition:\n{text}"))
}

/// PR 9 tentpole: one `metrics_text()` render exposes the whole stack —
/// serve counters, walker and oracle statistics, store checkpoint
/// gauges, latency histograms, and per-phase trace aggregates — with
/// every expected series present and no NaN anywhere.
#[test]
fn metrics_text_exposes_the_whole_stack() {
    let dir = std::env::temp_dir().join(format!("ncx_serve_metrics_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let serve = NcxServe::new(build_engine(80), ServeConfig::default());
    let q = serve.query(&["Financial Crime"]).unwrap();

    // Touch every subsystem so the interesting counters are nonzero.
    serve.rollup(&q, 10).unwrap();
    serve.rollup(&q, 10).unwrap(); // cache hit
    serve.drilldown(&q, 10).unwrap();
    serve.rollup_progressive_deadline(&q, 10, None).unwrap();
    serve.drilldown_progressive_deadline(&q, 10, None).unwrap();
    let err = serve
        .rollup_deadline(&q, 999, Some(Duration::ZERO))
        .unwrap_err();
    assert!(matches!(err, QueryError::DeadlineExceeded { .. }));
    serve.ingest_article(
        ncexplorer::index::NewsSource::Reuters,
        "wire",
        "A fresh financial crime story.",
        u32::MAX - 1,
    );
    serve.checkpoint(&dir).unwrap();

    let text = serve.metrics_text();
    let expected = [
        // Serve counters (mirroring ServeStats).
        "ncx_serve_completed_total",
        "ncx_serve_rejected_overload_total",
        "ncx_serve_rejected_deadline_total",
        "ncx_serve_partials_total",
        "ncx_serve_cache_hits_total",
        "ncx_serve_cache_misses_total",
        "ncx_serve_cache_evictions_total",
        "ncx_serve_cache_invalidations_total",
        "ncx_serve_ingested_total",
        "ncx_serve_checkpoints_total",
        "ncx_serve_compactions_total",
        // Walker + oracle aggregates across replicas.
        "ncx_walk_walks_total",
        "ncx_walk_hits_total",
        "ncx_walk_dead_ends_total",
        "ncx_walk_early_stops_total",
        "ncx_walk_estimates_total",
        "ncx_oracle_hits_total",
        "ncx_oracle_misses_total",
        "ncx_oracle_hit_rate",
        "ncx_walk_early_stop_fraction",
        "ncx_walk_avg_walks_per_estimate",
        // Store checkpoint metrics.
        "ncx_store_flushed_docs_total",
        "ncx_store_generations",
        "ncx_store_snapshot_bytes",
        // Server sizing gauges.
        "ncx_serve_cached_entries",
        "ncx_serve_replicas",
        // Histograms (each renders quantile/_sum/_count/_max lines).
        "ncx_serve_rollup_latency_us_count",
        "ncx_serve_drilldown_latency_us_count",
        "ncx_serve_progressive_rollup_latency_us_count",
        "ncx_serve_progressive_drilldown_latency_us_count",
        "ncx_serve_queue_wait_us_count",
        "ncx_serve_deadline_overshoot_us_count",
        "ncx_query_phase_queue_wait_us_count",
        "ncx_query_phase_cache_lookup_us_count",
        "ncx_query_phase_matching_us_count",
        "ncx_query_phase_oracle_bfs_us_count",
        "ncx_query_phase_walks_us_count",
        "ncx_query_phase_merge_rank_us_count",
    ];
    for name in expected {
        let _ = metric_value(&text, name); // panics when missing
    }
    assert!(!text.contains("NaN"), "NaN leaked into the exposition");
    let stats = serve.stats();
    assert_eq!(
        metric_value(&text, "ncx_serve_completed_total") as u64,
        stats.completed
    );
    assert_eq!(metric_value(&text, "ncx_serve_ingested_total") as u64, 1);
    assert_eq!(metric_value(&text, "ncx_serve_checkpoints_total") as u64, 1);
    assert!(metric_value(&text, "ncx_walk_walks_total") > 0.0);
    assert!(metric_value(&text, "ncx_walk_estimates_total") > 0.0);
    assert!(metric_value(&text, "ncx_store_snapshot_bytes") > 0.0);
    assert_eq!(metric_value(&text, "ncx_store_generations"), 1.0);
    assert_eq!(metric_value(&text, "ncx_serve_replicas"), 1.0);
    assert!(
        metric_value(&text, "ncx_serve_rollup_latency_us_count") >= 2.0,
        "classic roll-ups (hit + miss) must land in the latency histogram"
    );

    // Sessions expose the same trace the server aggregated. The ingest
    // above wiped the cache, so the first query re-fills it and the
    // repeat must hit.
    let session = serve.session();
    session.rollup(&q, 10).unwrap();
    let trace = session.last_trace().expect("session query records a trace");
    assert_eq!(trace.cache_hit(), Some(false), "cache was wiped by ingest");
    session.rollup(&q, 10).unwrap();
    let trace = session.last_trace().expect("session query records a trace");
    assert_eq!(trace.cache_hit(), Some(true), "repeat query must hit");
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: the deadline-overshoot histogram respects the documented
/// bound — a rejection surfaces at most one `check_interval` of work
/// past its limit. A generous interval keeps the bound meaningful even
/// under scheduler noise.
#[test]
fn deadline_overshoot_histogram_is_bounded_by_one_check_interval() {
    let check_interval = Duration::from_millis(200);
    let serve = NcxServe::new(
        build_engine(80),
        ServeConfig {
            check_interval,
            ..ServeConfig::default()
        },
    );
    let q = serve.query(&["Elections"]).unwrap();
    let rejections = 8u64;
    for _ in 0..rejections {
        let err = serve
            .rollup_deadline(&q, 999, Some(Duration::ZERO))
            .unwrap_err();
        assert!(matches!(err, QueryError::DeadlineExceeded { .. }));
    }
    let text = serve.metrics_text();
    assert_eq!(
        metric_value(&text, "ncx_serve_deadline_overshoot_us_count") as u64,
        rejections
    );
    let max_us = metric_value(&text, "ncx_serve_deadline_overshoot_us_max");
    assert!(
        max_us <= check_interval.as_micros() as f64,
        "overshoot {max_us}µs exceeds one check_interval ({check_interval:?})"
    );
}

/// PR 9 acceptance: a query's trace phases are wall-clock-disjoint and
/// sum to (approximately) its wall time. One attempt can be blown apart
/// by a scheduler preemption between spans, so a few retries absorb the
/// noise; the phases themselves are measured, not modelled, so a
/// systematic gap (an uninstrumented segment) fails every attempt.
#[test]
fn trace_phase_timings_cover_the_query_wall_time() {
    let serve = NcxServe::new(
        build_engine(200),
        ServeConfig {
            cache_capacity: 0, // every attempt must execute for real
            ..ServeConfig::default()
        },
    );
    let q = serve.query(&["Financial Crime"]).unwrap();
    let mut best = f64::NAN;
    for _ in 0..5 {
        let (result, trace) = serve.rollup_progressive_traced(&q, 50, None);
        assert!(result.unwrap().is_complete());
        assert!(trace.walks() > 0, "trace must count the walks spent");
        assert_eq!(trace.cache_hit(), Some(false));
        assert!(trace.wall() > Duration::ZERO);
        let coverage = trace.coverage();
        if (0.90..=1.10).contains(&coverage) {
            return;
        }
        if best.is_nan() || (coverage - 1.0).abs() < (best - 1.0).abs() {
            best = coverage;
        }
    }
    panic!("trace phases cover {best:.3} of wall time, outside [0.90, 1.10]");
}
