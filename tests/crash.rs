//! Crash-injection tests for the layered snapshot protocols.
//!
//! The contract under test: **every** interrupted flush, compaction, or
//! bootstrap save leaves a directory that opens to exactly the
//! pre-operation or post-operation corpus — never a hybrid, never a
//! panic — and re-running the operation after the crash completes and
//! lands on the post state.
//!
//! Mechanism: `ncx_store::fault` gates every filesystem mutation the
//! snapshot writers perform (segment write, rename, manifest write,
//! manifest rename, old-generation delete). The harness sweeps
//! `arm(0), arm(1), …`, killing the operation after each successive
//! fault point, and checks the directory left behind each time.
//!
//! Fault state is process-global, so these tests serialise through one
//! mutex (and CI runs this binary with `--test-threads=1`).

use ncexplorer::core::{NcExplorer, NcxConfig, Parallelism, StoreConfig};
use ncexplorer::datagen::{generate_corpus, generate_kg, CorpusConfig, KgGenConfig};
use ncexplorer::kg::KnowledgeGraph;
use ncexplorer::store::{fault, StoreError};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Generous upper bound on fault points per operation; the sweep exits
/// as soon as the operation completes without exhausting its budget.
const MAX_FAULT_POINTS: u64 = 500;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ncx_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Snapshot directories are flat; a plain file copy reproduces them.
fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn test_config() -> NcxConfig {
    NcxConfig {
        samples: 10,
        parallelism: Parallelism::sequential(),
        store: StoreConfig {
            snapshot_shards: 3,
            ..StoreConfig::default()
        },
        ..NcxConfig::default()
    }
}

fn build_engine(articles: usize) -> (Arc<KnowledgeGraph>, NcExplorer) {
    let kg = Arc::new(generate_kg(&KgGenConfig::default()));
    let corpus = generate_corpus(
        &kg,
        &CorpusConfig {
            articles,
            seed: 42,
            ..CorpusConfig::default()
        },
    );
    let engine = NcExplorer::build(kg.clone(), corpus.store, test_config());
    (kg, engine)
}

/// Exhaustive content fingerprint of an opened engine: corpus size,
/// every posting's exact score bits, and the stored articles. Two
/// directories with equal fingerprints serve identical answers.
fn corpus_fingerprint(engine: &NcExplorer) -> String {
    let mut s = String::new();
    write!(s, "docs={};", engine.index().num_docs()).unwrap();
    let mut concepts: Vec<_> = engine.index().indexed_concepts().collect();
    concepts.sort_unstable();
    for c in concepts {
        write!(s, "c{}:", c.raw()).unwrap();
        for p in engine.index().postings(c) {
            write!(
                s,
                "{}/{:016x}/{:016x}/{:016x}/{};",
                p.doc.raw(),
                p.cdr.to_bits(),
                p.cdro.to_bits(),
                p.cdrc.to_bits(),
                p.pivot.raw()
            )
            .unwrap();
        }
    }
    for a in engine.store().iter() {
        write!(s, "a:{}/{}/{};", a.title, a.body.len(), a.published).unwrap();
    }
    s
}

/// The observable state of a snapshot directory: its corpus fingerprint
/// if it opens, the sentinel if it is (still / again) not a snapshot.
/// Any other failure — a corrupt hybrid, a panic — fails the test.
fn directory_state(dir: &Path, kg: &Arc<KnowledgeGraph>) -> String {
    match NcExplorer::open(dir, kg.clone(), test_config()) {
        Ok(engine) => corpus_fingerprint(&engine),
        Err(StoreError::NotASnapshot { .. }) => "<no snapshot>".to_string(),
        Err(e) => panic!("interrupted operation left an unreadable directory: {e}"),
    }
}

/// Sweeps one snapshot operation: for each fault point in turn, restore
/// the pristine pre-state, kill the operation at that point, and assert
/// the survivor directory opens to the pre or post corpus — then that
/// re-running the operation recovers to post. Returns once the
/// operation completes without hitting its fault budget.
fn sweep_operation(
    tag: &str,
    pristine: &Path,
    kg: &Arc<KnowledgeGraph>,
    pre: &str,
    post: &str,
    op: &dyn Fn(&Path) -> Result<(), StoreError>,
) {
    let work = temp_dir(&format!("{tag}_work"));
    let mut injected = 0u64;
    for fail_at in 0..MAX_FAULT_POINTS {
        copy_dir(pristine, &work);
        fault::arm(fail_at);
        let result = op(&work);
        let hits = fault::disarm();
        match result {
            Err(_) => {
                injected += 1;
                let state = directory_state(&work, kg);
                assert!(
                    state == pre || state == post,
                    "{tag}: fault point {fail_at} left a hybrid directory"
                );
                // Crash-then-retry: the operation must be re-runnable on
                // the survivor directory and land exactly on post.
                op(&work).unwrap_or_else(|e| {
                    panic!("{tag}: retry after fault point {fail_at} failed: {e}")
                });
                assert_eq!(
                    directory_state(&work, kg),
                    post,
                    "{tag}: retry after fault point {fail_at} diverged from post"
                );
            }
            Ok(()) => {
                assert!(
                    hits <= fail_at,
                    "{tag}: operation claimed success with an exhausted fault budget"
                );
                assert_eq!(
                    directory_state(&work, kg),
                    post,
                    "{tag}: un-faulted operation diverged from post"
                );
                assert!(
                    injected > 0,
                    "{tag}: sweep never injected a fault — gate not wired?"
                );
                std::fs::remove_dir_all(&work).ok();
                return;
            }
        }
    }
    panic!("{tag}: operation did not complete within {MAX_FAULT_POINTS} fault points");
}

#[test]
fn interrupted_bootstrap_save_never_half_opens() {
    let _guard = FAULT_LOCK.lock().unwrap();
    let (kg, engine) = build_engine(15);
    let post = corpus_fingerprint(&engine);
    let empty = temp_dir("save_pristine");
    std::fs::create_dir_all(&empty).unwrap();
    sweep_operation("save", &empty, &kg, "<no snapshot>", &post, &|dir| {
        engine.save(dir)
    });
    std::fs::remove_dir_all(&empty).ok();
}

#[test]
fn interrupted_flush_opens_to_pre_or_post() {
    let _guard = FAULT_LOCK.lock().unwrap();
    let (kg, mut engine) = build_engine(15);

    // Base snapshot, then an ingest backlog to flush.
    let base = temp_dir("flush_pristine");
    engine.save(&base).unwrap();
    let pre = corpus_fingerprint(&engine);
    for i in 0..4 {
        engine.ingest(&format!(
            "Breaking update {i}: a bank faces fraud and money laundering charges."
        ));
    }
    let post = corpus_fingerprint(&engine);
    assert_ne!(pre, post);

    sweep_operation("flush", &base, &kg, &pre, &post, &|dir| {
        engine.flush_delta(dir).map(|_| ())
    });

    // Second flush on top of an existing delta generation: same contract
    // with a deeper stack.
    let layered = temp_dir("flush2_pristine");
    copy_dir(&base, &layered);
    engine.flush_delta(&layered).unwrap();
    let pre2 = corpus_fingerprint(&engine);
    for i in 0..3 {
        engine.ingest(&format!("Follow-up {i}: regulators sued another exchange."));
    }
    let post2 = corpus_fingerprint(&engine);
    sweep_operation("flush2", &layered, &kg, &pre2, &post2, &|dir| {
        engine.flush_delta(dir).map(|_| ())
    });

    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&layered).ok();
}

#[test]
fn interrupted_compaction_opens_to_pre_or_post() {
    let _guard = FAULT_LOCK.lock().unwrap();
    let (kg, mut engine) = build_engine(12);

    // Build a three-generation stack: base + two deltas.
    let stacked = temp_dir("compact_pristine");
    engine.save(&stacked).unwrap();
    for round in 0..2 {
        for i in 0..3 {
            engine.ingest(&format!(
                "Stack round {round} article {i}: fresh fraud allegations at a bank."
            ));
        }
        engine.flush_delta(&stacked).unwrap();
    }
    // Compaction preserves the corpus exactly: pre and post fingerprints
    // are the same state, reached through different file layouts.
    let state = corpus_fingerprint(&engine);
    assert_eq!(directory_state(&stacked, &kg), state);

    sweep_operation("compact", &stacked, &kg, &state, &state, &|dir| {
        NcExplorer::compact(dir, &kg).map(|_| ())
    });

    // An un-faulted compaction on the pristine stack really folds it.
    let outcome = NcExplorer::compact(&stacked, &kg).unwrap();
    assert!(outcome.compacted);
    assert_eq!(outcome.generations_before, 3);
    assert_eq!(directory_state(&stacked, &kg), state);
    std::fs::remove_dir_all(&stacked).ok();
}
